"""PEBIL-like execution of an instrumented program.

:class:`InstrumentedProgram` attaches a probe to every memory instruction
and "runs" the program: per basic block, the instructions' interleaved
address stream is generated chunk-by-chunk and pushed through a cache
simulator configured like the *target* hierarchy.  Two full passes over
the program are made — a warm-up pass to reach the steady state of the
app's outer time-step loop, and a measured pass — matching the on-the-fly
collection of Fig. 2.

Sampling: tracing every dynamic access of a production run is exactly the
cost the paper is trying to avoid (2 TB/hour per process).  Like
PEBIL-based collection in practice, each block is *sampled*: at most
``sample_accesses`` dynamic accesses are simulated and per-instruction
counts are scaled back to full magnitudes analytically.  Hit rates come
from the sample; counts stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.simulator import HierarchySimulator
from repro.instrument.program import BasicBlockSpec, Program
from repro.memstream.generator import interleave_streams
from repro.util.rng import RngStream, stream
from repro.util.validation import check_positive


@dataclass
class BlockObservation:
    """Measured behavior of one block's memory instructions.

    Arrays are indexed by memory-instruction position within the block.
    ``level_hits`` has shape ``(n_mem_instr, n_levels)`` and counts hits
    of the *sampled* accesses at each level.
    """

    block_id: int
    sampled_iterations: int
    full_iterations: int
    accesses: np.ndarray
    level_hits: np.ndarray

    @property
    def scale(self) -> float:
        """Count multiplier from sample to full execution."""
        if self.sampled_iterations == 0:
            return 0.0
        return self.full_iterations / self.sampled_iterations

    def cumulative_hit_rates(self) -> np.ndarray:
        """Per-instruction cumulative hit rates, shape (n_instr, n_levels)."""
        totals = np.maximum(self.accesses.astype(np.float64), 1e-12)
        return np.cumsum(self.level_hits, axis=1) / totals[:, None]

    def served_counts(self) -> np.ndarray:
        """Per-instruction served-at counts incl. memory, (n_instr, n_levels+1)."""
        misses = self.accesses - self.level_hits.sum(axis=1)
        return np.concatenate([self.level_hits, misses[:, None]], axis=1)


@dataclass
class InstrumentationReport:
    """All block observations of one instrumented run."""

    program_name: str
    hierarchy_name: str
    observations: Dict[int, BlockObservation] = field(default_factory=dict)

    def observation(self, block_id: int) -> BlockObservation:
        try:
            return self.observations[block_id]
        except KeyError:
            raise KeyError(
                f"no observation for block {block_id} in {self.program_name}"
            ) from None


class InstrumentedProgram:
    """A program with memory probes attached, ready to run.

    Parameters
    ----------
    program:
        The laid-out program (:meth:`Program.layout` must have run;
        running an un-laid-out program would alias all regions at 0).
    hierarchy:
        Target cache hierarchy to simulate (cross-architectural: this
        need not be the machine "executing" the program).
    sample_accesses:
        Per-block cap on sampled dynamic accesses per pass.
    """

    def __init__(
        self,
        program: Program,
        hierarchy: CacheHierarchy,
        *,
        sample_accesses: int = 200_000,
        max_sample_accesses: int = 3_000_000,
        chunk: int = 1 << 16,
    ):
        if not program.laid_out:
            raise ValueError(
                f"program {program.name!r} must be laid out before instrumentation"
            )
        check_positive("sample_accesses", sample_accesses)
        check_positive("max_sample_accesses", max_sample_accesses)
        check_positive("chunk", chunk)
        self.program = program
        self.hierarchy = hierarchy
        self.sample_accesses = sample_accesses
        self.max_sample_accesses = max(max_sample_accesses, sample_accesses)
        self.chunk = chunk
        self._largest_cache = max(g.size_bytes for g in hierarchy.levels)

    def _sampled_iterations(self, block: BasicBlockSpec) -> int:
        """Choose the per-block sample length.

        The sample must be *coverage-faithful*: for sweep-style patterns
        (strided, stencil) whose cache reuse comes from re-walking the
        region, a sample shorter than the region would look like a
        smaller working set.  It suffices to either (a) wrap the region
        at least once, or (b) decisively exceed the largest cache — in
        both cases steady-state hit rates match the full run.  We take
        the cheaper of the two per instruction, then the max over the
        block's instructions, bounded by ``max_sample_accesses``.
        """
        per_iter = block.mem_accesses_per_iteration
        if per_iter == 0 or block.exec_count == 0:
            return 0
        iters_needed = max(1, self.sample_accesses // per_iter)
        for m in block.mem_instructions:
            elems = m.pattern.n_elements
            cache_elems = 2 * self._largest_cache // m.pattern.element_size
            coverage = min(elems, cache_elems)
            iters_needed = max(
                iters_needed, -(-coverage // m.per_iteration)  # ceil div
            )
        hard_cap = max(1, self.max_sample_accesses // per_iter)
        return min(block.exec_count, iters_needed, hard_cap)

    def _warm_iterations(self, block: BasicBlockSpec, measured: int) -> int:
        """Warm-up length: enough to fill every cache level, no more."""
        per_iter = block.mem_accesses_per_iteration
        if per_iter == 0:
            return 0
        fill = max(1, 2 * self._largest_cache // (8 * per_iter))
        return min(measured, fill)

    def _run_pass(
        self,
        sim: HierarchySimulator,
        rng: RngStream,
        *,
        record: bool,
    ) -> Optional[Dict[int, BlockObservation]]:
        observations: Dict[int, BlockObservation] = {}
        for block in self.program.blocks:
            n_mem = len(block.mem_instructions)
            iters = self._sampled_iterations(block)
            if not record:
                iters = self._warm_iterations(block, iters)
            if n_mem == 0 or iters == 0:
                if record:
                    observations[block.block_id] = BlockObservation(
                        block_id=block.block_id,
                        sampled_iterations=iters,
                        full_iterations=block.exec_count,
                        accesses=np.zeros(n_mem, dtype=np.int64),
                        level_hits=np.zeros(
                            (n_mem, self.hierarchy.n_levels), dtype=np.int64
                        ),
                    )
                continue
            if record:
                sim.clear_counters()
            patterns = [m.pattern for m in block.mem_instructions]
            counts = [m.per_iteration * iters for m in block.mem_instructions]
            block_rng = rng.child("block", block.block_id)
            for instr_idx, addrs in interleave_streams(
                patterns, counts, block_rng, chunk=self.chunk
            ):
                sim.process(addrs, instr_idx if record else None)
            if record:
                result = sim.result()
                accesses = np.zeros(n_mem, dtype=np.int64)
                level_hits = np.zeros((n_mem, self.hierarchy.n_levels), dtype=np.int64)
                for j, lv in enumerate(result.levels):
                    k = min(n_mem, lv.instr_hits.shape[0])
                    level_hits[:k, j] = lv.instr_hits[:k]
                    if j == 0:
                        accesses[:k] = lv.instr_accesses[:k]
                observations[block.block_id] = BlockObservation(
                    block_id=block.block_id,
                    sampled_iterations=iters,
                    full_iterations=block.exec_count,
                    accesses=accesses,
                    level_hits=level_hits,
                )
        return observations if record else None

    def run(self, rng: Optional[RngStream] = None) -> InstrumentationReport:
        """Execute warm-up + measured passes; return per-block observations."""
        if rng is None:
            rng = stream("pebil", self.program.name, self.hierarchy.name)
        sim = HierarchySimulator(self.hierarchy)
        self._run_pass(sim, rng.child("warm"), record=False)
        observations = self._run_pass(sim, rng.child("measure"), record=True)
        return InstrumentationReport(
            program_name=self.program.name,
            hierarchy_name=self.hierarchy.name,
            observations=observations or {},
        )
