"""On-the-fly signature collection: program -> trace file.

Drives an :class:`~repro.instrument.pebil.InstrumentedProgram` and turns
the observations into a :class:`~repro.trace.tracefile.TraceFile` of
per-instruction feature vectors — the application-signature half of the
PMaC framework's inputs (Fig. 2).  Counts are full-execution magnitudes
(sampled counts rescaled analytically); hit rates and working sets come
from the measured sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.cache.engine import ENGINE_NAMES, get_engine
from repro.cache.hierarchy import CacheHierarchy
from repro.instrument.pebil import InstrumentedProgram, InstrumentationReport
from repro.instrument.program import Program
from repro.obs.trace import span
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord
from repro.trace.tracefile import TraceFile
from repro.util.rng import RngStream


@dataclass(frozen=True)
class CollectorConfig:
    """Knobs for signature collection.

    ``sample_accesses`` bounds per-block simulated accesses per pass
    (the trace-size/time mitigation of §I); ``chunk`` is the stream
    chunk length.  ``engine`` selects how hit rates are obtained:
    ``"exact"`` replays every address through the LRU simulator,
    ``"reuse"`` evaluates reuse-distance profiles analytically
    (see :mod:`repro.cache.engine`).  The engine is part of collection
    identity, so it participates in signature-cache keys.
    """

    sample_accesses: int = 200_000
    max_sample_accesses: int = 3_000_000
    chunk: int = 1 << 16
    engine: str = "exact"

    def __post_init__(self):
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown cache engine {self.engine!r}; "
                f"known engines: {ENGINE_NAMES}"
            )


def collect_trace(
    program: Program,
    hierarchy: CacheHierarchy,
    *,
    app: str,
    rank: int,
    n_ranks: int,
    config: Optional[CollectorConfig] = None,
    rng: Optional[RngStream] = None,
    report: Optional[InstrumentationReport] = None,
) -> TraceFile:
    """Collect one MPI task's trace file against a target hierarchy.

    Parameters
    ----------
    program:
        The task's laid-out program.
    hierarchy:
        Target-system hierarchy to simulate hit rates against.
    app, rank, n_ranks:
        Trace metadata.
    report:
        Pre-computed instrumentation report; if omitted the program is
        instrumented and run here.
    """
    config = config or CollectorConfig()
    if report is None:
        instrumented = InstrumentedProgram(
            program,
            hierarchy,
            sample_accesses=config.sample_accesses,
            max_sample_accesses=config.max_sample_accesses,
            chunk=config.chunk,
        )
        engine = get_engine(config.engine)
        with span(
            "cachesim.run",
            app=app,
            rank=rank,
            n_ranks=n_ranks,
            engine=config.engine,
        ):
            report = engine.run(instrumented, rng)
    schema = FeatureSchema(hierarchy.level_names)
    trace = TraceFile(
        app=app,
        rank=rank,
        n_ranks=n_ranks,
        target=hierarchy.name,
        schema=schema,
    )
    for block in program.blocks:
        obs = report.observation(block.block_id)
        record = BasicBlockRecord(block_id=block.block_id, location=block.location)
        hit_rates = obs.cumulative_hit_rates() if obs.accesses.size else None
        instr_id = 0
        for i, mem in enumerate(block.mem_instructions):
            full_count = float(block.exec_count * mem.per_iteration)
            values = {
                # exec_count is the containing block's dynamic iteration
                # count (uniform across the block's instructions); the
                # instruction's own dynamic access count is mem_ops.
                "exec_count": float(block.exec_count),
                "mem_ops": full_count,
                "loads": full_count if mem.kind == "load" else 0.0,
                "stores": full_count if mem.kind == "store" else 0.0,
                "ref_bytes": float(mem.pattern.element_size),
                "working_set_bytes": float(mem.pattern.footprint_bytes()),
            }
            vec = schema.vector_from_dict(values)
            if hit_rates is not None and obs.accesses[i] > 0:
                vec[schema.hit_rate_slice] = hit_rates[i]
            record.instructions.append(
                InstructionRecord(instr_id=instr_id, kind=mem.kind, features=vec)
            )
            instr_id += 1
        for fp in block.fp_instructions:
            values = {
                "exec_count": float(block.exec_count),
                "ilp": fp.ilp,
                "dep_chain": fp.dep_chain,
            }
            for kind, per_iter in fp.op_counts.items():
                values[kind] = per_iter * block.exec_count
            vec = schema.vector_from_dict(values)
            record.instructions.append(
                InstructionRecord(instr_id=instr_id, kind="fp", features=vec)
            )
            instr_id += 1
        trace.add_block(record)
    return trace
