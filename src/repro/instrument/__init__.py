"""Synthetic-binary instrumentation: the PEBIL stand-in.

The real pipeline instruments compiled executables with PEBIL and pipes
each process's memory address stream through a cache simulator while the
application runs (paper Fig. 2).  Our "executables" are synthetic IR
programs — ordered basic blocks whose instructions carry parametric
access patterns and op counts.  The instrumenter walks the IR exactly the
way PEBIL walks a binary: lay out data regions, attach probes to every
memory instruction, run, and stream addresses into the simulator,
producing a per-task :class:`~repro.trace.tracefile.TraceFile`.
"""

from repro.instrument.program import (
    BasicBlockSpec,
    FpInstructionSpec,
    MemInstructionSpec,
    Program,
)
from repro.instrument.builder import ProgramBuilder
from repro.instrument.pebil import InstrumentedProgram, InstrumentationReport
from repro.instrument.collector import CollectorConfig, collect_trace

__all__ = [
    "MemInstructionSpec",
    "FpInstructionSpec",
    "BasicBlockSpec",
    "Program",
    "ProgramBuilder",
    "InstrumentedProgram",
    "InstrumentationReport",
    "CollectorConfig",
    "collect_trace",
]
