"""Synthetic executable IR.

A :class:`Program` is the static image of one MPI task's computation: an
ordered list of basic blocks, each holding memory instructions (with
access patterns) and floating-point instructions (with op-class mixes and
dependence structure), plus a dynamic execution count.  The app layer
(:mod:`repro.apps`) generates one program per (rank, core count) from its
domain decomposition; nothing in this module knows about MPI or scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple


from repro.memstream.patterns import AccessPattern
from repro.trace.records import SourceLocation
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class MemInstructionSpec:
    """One static memory instruction.

    Parameters
    ----------
    kind:
        ``"load"`` or ``"store"``.
    pattern:
        Access pattern (region size == the instruction's working set).
        The base address is assigned by the program layout pass.
    per_iteration:
        Dynamic accesses per block iteration.
    """

    kind: str
    pattern: AccessPattern
    per_iteration: int = 1

    def __post_init__(self):
        if self.kind not in ("load", "store"):
            raise ValueError(f"mem instruction kind must be load/store, got {self.kind!r}")
        check_positive("per_iteration", self.per_iteration)


@dataclass(frozen=True)
class FpInstructionSpec:
    """One static floating-point instruction (or fused group).

    Parameters
    ----------
    op_counts:
        Ops per block iteration, keyed by class (``fp_add``...).
    ilp:
        Independent-operation parallelism available around this
        instruction (how many such ops the core can overlap).
    dep_chain:
        Average dependence-chain length feeding the op.
    """

    op_counts: Dict[str, float]
    ilp: float = 2.0
    dep_chain: float = 3.0

    def __post_init__(self):
        if not self.op_counts:
            raise ValueError("fp instruction needs at least one op class")
        for kind, count in self.op_counts.items():
            if kind not in ("fp_add", "fp_mul", "fp_fma", "fp_div"):
                raise ValueError(f"unknown fp op class {kind!r}")
            check_in_range(f"op_counts[{kind}]", count, low=0.0)
        check_positive("ilp", self.ilp)
        check_positive("dep_chain", self.dep_chain)

    @property
    def ops_per_iteration(self) -> float:
        return float(sum(self.op_counts.values()))


@dataclass(frozen=True)
class BasicBlockSpec:
    """One basic block: instructions + dynamic execution count."""

    block_id: int
    location: SourceLocation
    mem_instructions: Tuple[MemInstructionSpec, ...] = ()
    fp_instructions: Tuple[FpInstructionSpec, ...] = ()
    exec_count: int = 1

    def __post_init__(self):
        check_in_range("exec_count", self.exec_count, low=0)
        if not self.mem_instructions and not self.fp_instructions:
            raise ValueError(f"block {self.block_id} has no instructions")

    @property
    def n_instructions(self) -> int:
        return len(self.mem_instructions) + len(self.fp_instructions)

    @property
    def mem_accesses_per_iteration(self) -> int:
        return sum(m.per_iteration for m in self.mem_instructions)

    @property
    def total_mem_accesses(self) -> int:
        return self.exec_count * self.mem_accesses_per_iteration

    @property
    def total_fp_ops(self) -> float:
        return self.exec_count * sum(
            f.ops_per_iteration for f in self.fp_instructions
        )

    def with_layout(self, bases: Sequence[int]) -> "BasicBlockSpec":
        """Relocate each memory pattern to its assigned base address."""
        if len(bases) != len(self.mem_instructions):
            raise ValueError("one base address required per memory instruction")
        mem = tuple(
            replace(m, pattern=m.pattern.with_base(b))
            for m, b in zip(self.mem_instructions, bases)
        )
        return replace(self, mem_instructions=mem)


#: Alignment for data-region layout (a large page).
_REGION_ALIGN = 1 << 21


@dataclass
class Program:
    """Static image of one task's computation.

    ``blocks`` are in program order; the collector executes them in this
    order (the program's outer time-step loop re-enters the sequence).
    Call :meth:`layout` before execution to place every data region at a
    unique, non-aliasing base address.
    """

    name: str
    blocks: List[BasicBlockSpec] = field(default_factory=list)
    laid_out: bool = False

    def add_block(self, block: BasicBlockSpec) -> None:
        if any(b.block_id == block.block_id for b in self.blocks):
            raise ValueError(f"duplicate block id {block.block_id}")
        self.blocks.append(block)
        self.laid_out = False

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_mem_accesses(self) -> int:
        return sum(b.total_mem_accesses for b in self.blocks)

    @property
    def total_fp_ops(self) -> float:
        return sum(b.total_fp_ops for b in self.blocks)

    def block(self, block_id: int) -> BasicBlockSpec:
        for b in self.blocks:
            if b.block_id == block_id:
                return b
        raise KeyError(f"no block with id {block_id}")

    def layout(self, *, shared_regions: Optional[Dict[str, int]] = None) -> "Program":
        """Assign non-overlapping base addresses to all data regions.

        Regions are packed in block/instruction order with large-page
        alignment, mimicking a loader placing distinct arrays.  Returns
        ``self`` (mutated) for chaining.
        """
        cursor = _REGION_ALIGN  # leave page zero unmapped
        new_blocks: List[BasicBlockSpec] = []
        for block in self.blocks:
            bases = []
            for m in block.mem_instructions:
                size = m.pattern.region_bytes
                bases.append(cursor)
                cursor += ((size + _REGION_ALIGN - 1) // _REGION_ALIGN) * _REGION_ALIGN
            new_blocks.append(block.with_layout(bases))
        self.blocks = new_blocks
        self.laid_out = True
        return self

    def footprint_bytes(self) -> int:
        """Total bytes of all data regions (post- or pre-layout)."""
        return sum(
            m.pattern.region_bytes
            for b in self.blocks
            for m in b.mem_instructions
        )
