"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates the paper's tables as text; this module
renders them in a fixed-width format with per-column alignment so the
output can be diffed between runs and eyeballed against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


@dataclass
class Table:
    """A simple column-oriented table.

    Parameters
    ----------
    columns:
        Column headers, in display order.
    title:
        Optional title rendered above the table.
    float_fmt:
        ``format()`` spec applied to float cells (default 3 significant
        decimals, matching the precision the paper reports).
    """

    columns: Sequence[str]
    title: Optional[str] = None
    float_fmt: str = ".3f"
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(c, self.float_fmt) for c in cells])

    def render(self) -> str:
        """Render the table to a fixed-width string."""
        return format_table(self.columns, self.rows, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - delegates to render
        return self.render()


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[str]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render ``columns``/``rows`` of pre-stringified cells."""
    rows = [list(r) for r in rows]
    widths = [len(c) for c in columns]
    for row in rows:
        if len(row) != len(columns):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
