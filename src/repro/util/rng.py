"""Deterministic, hierarchical random-number streams.

The library simulates many interacting components (per-rank address
streams, per-block access patterns, network jitter, ...).  To keep every
experiment reproducible regardless of execution order, each component
derives its own independent :class:`RngStream` from a *path* of string /
integer labels, e.g.::

    rng = stream("uh3d", rank, "particle_push", block_id)

Two different paths always yield statistically independent streams, and
the same path always yields the same stream, independent of how many
other streams were created in between.  This follows the "seed by key,
not by call order" idiom used in large parallel simulations.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

PathElement = Union[str, int, float, bytes]

#: Global root seed.  Changing this reseeds the entire library.
DEFAULT_ROOT_SEED = 0x5EED_CAFE


def derive_seed(*path: PathElement, root: int = DEFAULT_ROOT_SEED) -> int:
    """Derive a 64-bit seed from a hierarchical path of labels.

    The derivation is a SHA-256 hash of the canonical encoding of the
    path, truncated to 64 bits.  It is stable across Python versions and
    platforms (unlike ``hash()``).

    Parameters
    ----------
    *path:
        Any mix of strings, ints, floats and bytes identifying the
        consumer of the stream.
    root:
        Root seed mixed into every derivation.

    Returns
    -------
    int
        A seed in ``[0, 2**64)``.
    """
    h = hashlib.sha256()
    h.update(root.to_bytes(16, "little", signed=False))
    for element in path:
        if isinstance(element, bytes):
            tag, payload = b"b", element
        elif isinstance(element, bool):  # before int: bool is an int subclass
            tag, payload = b"o", (b"\x01" if element else b"\x00")
        elif isinstance(element, int):
            tag, payload = b"i", element.to_bytes(16, "little", signed=True)
        elif isinstance(element, float):
            tag, payload = b"f", np.float64(element).tobytes()
        elif isinstance(element, str):
            tag, payload = b"s", element.encode("utf-8")
        else:
            raise TypeError(f"unsupported path element type: {type(element)!r}")
        h.update(tag)
        h.update(len(payload).to_bytes(8, "little"))
        h.update(payload)
    return int.from_bytes(h.digest()[:8], "little")


class RngStream:
    """A named, independently-seeded random stream.

    Thin wrapper over :class:`numpy.random.Generator` that records the
    path it was derived from (useful in error messages and for spawning
    child streams).
    """

    __slots__ = ("path", "root", "generator")

    def __init__(self, *path: PathElement, root: int = DEFAULT_ROOT_SEED):
        self.path = tuple(path)
        self.root = root
        self.generator = np.random.default_rng(derive_seed(*path, root=root))

    def child(self, *subpath: PathElement) -> "RngStream":
        """Derive an independent child stream under this stream's path."""
        return RngStream(*self.path, *subpath, root=self.root)

    # -- proxied sampling helpers (the ones the library actually uses) --

    def integers(self, low, high=None, size=None, dtype=np.int64):
        return self.generator.integers(low, high=high, size=size, dtype=dtype)

    def random(self, size=None):
        return self.generator.random(size=size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self.generator.normal(loc=loc, scale=scale, size=size)

    def uniform(self, low=0.0, high=1.0, size=None):
        return self.generator.uniform(low=low, high=high, size=size)

    def choice(self, a, size=None, replace=True, p=None):
        return self.generator.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        return self.generator.permutation(x)

    def shuffle(self, x):
        self.generator.shuffle(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream(path={self.path!r})"


def stream(*path: PathElement, root: int = DEFAULT_ROOT_SEED) -> RngStream:
    """Convenience constructor for :class:`RngStream`."""
    return RngStream(*path, root=root)
