"""Shared utilities: RNG streams, units, validation, tables, errors.

Everything stochastic in the library flows through :mod:`repro.util.rng`
so that experiments are reproducible bit-for-bit.  The remaining modules
are small leaf helpers used across the package.
"""

from repro.util.atomic import (
    atomic_dir,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)
from repro.util.errors import (
    CacheCorruptionError,
    CollectionError,
    DagError,
    FitError,
    PredictionError,
    ReproError,
    TaskCrashError,
    TaskTimeoutError,
    TransientTaskError,
    UsageError,
)
from repro.util.rng import RngStream, derive_seed, stream
from repro.util.units import (
    KB,
    MB,
    GB,
    bytes_to_human,
    human_to_bytes,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_power_of_two,
    ValidationError,
)
from repro.util.tables import Table, format_table

__all__ = [
    "atomic_dir",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "atomic_writer",
    "CacheCorruptionError",
    "CollectionError",
    "DagError",
    "FitError",
    "PredictionError",
    "ReproError",
    "TaskCrashError",
    "TaskTimeoutError",
    "TransientTaskError",
    "UsageError",
    "RngStream",
    "derive_seed",
    "stream",
    "KB",
    "MB",
    "GB",
    "bytes_to_human",
    "human_to_bytes",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "ValidationError",
    "Table",
    "format_table",
]
