"""Argument-validation helpers with uniform error messages.

Configuration objects across the library (cache geometries, machine
profiles, application parameters) validate eagerly at construction time so
that a bad experiment fails immediately with a clear message rather than
deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ValidationError(ValueError):
    """Raised when a configuration or argument value is invalid."""


def check_positive(name: str, value) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def check_in_range(
    name: str,
    value,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> None:
    """Require ``value`` to lie within the given (possibly open) interval."""
    if low is not None:
        ok = value >= low if low_inclusive else value > low
        if not ok:
            op = ">=" if low_inclusive else ">"
            raise ValidationError(f"{name} must be {op} {low}, got {value!r}")
    if high is not None:
        ok = value <= high if high_inclusive else value < high
        if not ok:
            op = "<=" if high_inclusive else "<"
            raise ValidationError(f"{name} must be {op} {high}, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Require an integral power of two (cache geometry constraint)."""
    if not isinstance(value, (int, np.integer)) or value <= 0 or value & (value - 1):
        raise ValidationError(f"{name} must be a positive power of two, got {value!r}")


def check_finite(name: str, array) -> None:
    """Require every element of an array (or scalar) to be finite."""
    arr = np.asarray(array)
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
