"""Structured error taxonomy for pipeline paths.

Every failure the pipeline can surface to a caller is a
:class:`ReproError` carrying three pieces of context — the *stage* it
happened in (``collect``/``fit``/``predict``/``cache``/``exec``), the
*task key* of the work unit (e.g. ``collect:jacobi:16``), and the
*attempt* count when the executor had retried it.  The context is baked
into the message so it survives pickling across process-pool workers
(exception unpickling re-invokes ``__init__`` with ``args`` only).

Subclasses double-inherit the builtin they historically replaced
(``ValueError``/``RuntimeError``/``TimeoutError``) so existing
``except ValueError`` call sites and tests keep working.

Retry semantics (see :mod:`repro.exec.resilience`):

- :class:`TransientTaskError` and :class:`TaskCrashError` are the
  *retryable* failures — re-running the pure task may succeed.
- :class:`TaskTimeoutError` is retryable while attempts remain, then
  terminal.
- everything else is deterministic (same inputs, same error) and
  propagates immediately; retrying would only replay it.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for structured pipeline errors."""

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        task_key: Optional[str] = None,
        attempts: Optional[int] = None,
    ):
        self.stage = stage
        self.task_key = task_key
        self.attempts = attempts
        self.base_message = message
        context = []
        if stage is not None:
            context.append(f"stage={stage}")
        if task_key is not None:
            context.append(f"task={task_key}")
        if attempts is not None:
            context.append(f"attempts={attempts}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class CollectionError(ReproError, ValueError):
    """Signature collection failed (bad rank selection, job mismatch)."""


class FitError(ReproError, ValueError):
    """Canonical-form fitting / extrapolation input was unusable."""


class PredictionError(ReproError, ValueError):
    """Runtime prediction was asked to convolve inconsistent inputs."""


class CacheCorruptionError(ReproError):
    """A cache entry failed digest/unpickle verification.

    Raised only *inside* the cache layer; callers observe a miss plus a
    quarantined file, never this exception (acceptance: corruption must
    not surface to pipeline code).
    """


class TaskTimeoutError(ReproError, TimeoutError):
    """A pooled task exceeded its per-attempt wall-clock budget."""


class TaskCrashError(ReproError, RuntimeError):
    """A pool worker died (or a crash fault fired) while running a task."""


class TransientTaskError(ReproError, RuntimeError):
    """An error the executor may retry (injected faults use this)."""


class UsageError(ReproError):
    """Invalid CLI input; the CLI exits 2 with the message, no traceback."""


class DagError(ReproError):
    """A pipeline-DAG run could not complete.

    Raised for structural problems (a spec whose graph cannot be built,
    an unreadable state store) and as the terminal summary when node
    failures poisoned part of the graph.  Per-node failures themselves
    are *isolated*, not raised: a failing node is recorded in the state
    store, its downstream cone is marked poisoned, and every other
    branch keeps executing.
    """


class ServeError(ReproError):
    """The query engine could not answer (unknown model, engine down)."""


class AdmissionError(ServeError):
    """A query was rejected at admission (tenant queue full, backpressure).

    Deterministic from the caller's point of view — the *load* caused
    it, not the query — so it is never retried internally; clients are
    expected to back off and resubmit.
    """


class DeadlineExceededError(ServeError, TimeoutError):
    """A query's ``deadline_ms`` expired before it could be answered.

    Raised at one of three boundaries — admission (the backpressure wait
    outlived the deadline), dispatch (the query aged out in its tenant
    queue), or batch flush (the deadline passed while the query was
    parked in an open batch).  Always a fast typed answer, never a hang:
    an expired query is cancelled, not computed.
    """


class CircuitOpenError(ServeError):
    """The model's circuit breaker is open; the query was shed.

    After ``breaker_threshold`` consecutive batch failures for one model
    the engine stops dispatching to it and fails queries fast with this
    error until a timed half-open probe succeeds.  Clients should retry
    after a backoff — the breaker re-closes on the first healthy probe.
    """
