"""Atomic filesystem commits: tmp + ``os.replace``, in one place.

Every durable artifact the pipeline writes — run manifests, Prometheus
exposition files, registry model directories, DAG node artifacts — must
be crash-consistent: a reader (or a resumed run) may see the old
content or the new content, never a torn half-write.  POSIX gives that
guarantee for free through ``os.replace`` of a same-directory temporary,
so the pattern is small — but it was copy-pasted three times before
this module existed, and a fourth consumer (the pipeline DAG's artifact
store) would have made four.  The helpers here are that one pattern,
shared.

File commits (:func:`atomic_write_bytes` / :func:`atomic_write_text` /
:func:`atomic_write_json`, or :func:`atomic_writer` when the payload
must be produced by a library that writes paths itself, e.g.
``np.savez``) replace the destination file.  Directory commits
(:func:`atomic_dir`) build the new tree in a pid-suffixed sibling and
rename it into place; when the destination appeared concurrently the
tmp tree is discarded — under content addressing a concurrent writer
produced the same bytes, so losing the race is free.
"""

from __future__ import annotations

import json
import os
import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union


def _tmp_name(path: Path) -> Path:
    """A same-directory, pid-unique temporary sibling of ``path``.

    Same directory (not :mod:`tempfile`'s default) so the final
    ``os.replace`` never crosses a filesystem boundary; pid-unique so
    two processes committing the same destination never clobber each
    other's half-written temporaries.  The name *ends with* the real
    filename so suffix-sniffing writers behave: ``np.savez`` appends
    ``.npz`` to any path that lacks it, which would orphan the
    temporary and break the commit.
    """
    return path.with_name(f".tmp-{os.getpid()}-{path.name}")


@contextmanager
def atomic_writer(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temporary path; commit it over ``path`` on clean exit.

    The body writes the temporary however it likes (``np.savez``,
    ``TraceFile.save_npz``, plain ``open``); on success the temporary is
    renamed over the destination in one ``os.replace``.  On an exception
    the temporary is removed and nothing at the destination changes.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_name(path)
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``."""
    path = Path(path)
    with atomic_writer(path) as tmp:
        tmp.write_bytes(data)
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, *, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``."""
    path = Path(path)
    with atomic_writer(path) as tmp:
        tmp.write_text(text, encoding=encoding)
    return path


def atomic_write_json(
    path: Union[str, Path], doc, *, indent: int = 2, sort_keys: bool = True
) -> Path:
    """Atomically replace ``path`` with ``doc`` rendered as JSON.

    Sorted keys and fixed indent by default, so re-writing unchanged
    content leaves a byte-identical file — the digest-stability contract
    run manifests and DAG artifacts rely on.
    """
    return atomic_write_text(
        path, json.dumps(doc, indent=indent, sort_keys=sort_keys) + "\n"
    )


@contextmanager
def atomic_dir(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temporary directory; commit it as ``path`` on clean exit.

    The registry/DAG directory-store discipline: build the whole entry
    in a pid-suffixed sibling, then rename it into the namespace in one
    ``os.replace``.  If the destination already exists when the body
    finishes, a concurrent writer won the race — the tmp tree is
    discarded, because under content addressing same name means same
    content.  On an exception the tmp tree is removed and the
    destination is untouched.
    """
    path = Path(path)
    tmp = _tmp_name(path)
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        yield tmp
        path.parent.mkdir(parents=True, exist_ok=True)
        if not path.exists():
            os.replace(tmp, path)
    finally:
        if tmp.exists():
            shutil.rmtree(tmp, ignore_errors=True)
