"""Byte-size units and conversions.

The machine and cache configuration layers describe sizes in bytes; these
helpers keep configuration code readable (``56 * KB``) and make log/table
output human friendly.  Binary (power-of-two) units are used throughout,
matching how cache sizes are specified in the paper (e.g. "12KB L1").
"""

from __future__ import annotations

import re

#: 1 KiB (the paper writes "KB" for cache sizes; these are binary units).
KB = 1024
#: 1 MiB.
MB = 1024 * KB
#: 1 GiB.
GB = 1024 * MB

_SUFFIXES = [("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)]

_HUMAN_RE = re.compile(
    r"^\s*(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>[KMG]?i?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "K": KB,
    "KB": KB,
    "KIB": KB,
    "M": MB,
    "MB": MB,
    "MIB": MB,
    "G": GB,
    "GB": GB,
    "GIB": GB,
}


def bytes_to_human(n: int) -> str:
    """Format a byte count using the largest exact-or-close binary unit.

    >>> bytes_to_human(12 * 1024)
    '12KB'
    >>> bytes_to_human(1536)
    '1.5KB'
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for suffix, factor in _SUFFIXES:
        if n >= factor:
            value = n / factor
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
    return f"{n}B"


def human_to_bytes(text: str) -> int:
    """Parse a human-readable size like ``"56KB"`` or ``"1.5 MiB"``.

    >>> human_to_bytes("56KB")
    57344
    """
    match = _HUMAN_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse size: {text!r}")
    unit = match.group("unit").upper()
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown unit in size: {text!r}")
    value = float(match.group("value")) * _UNIT_FACTORS[unit]
    if value != int(value):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(value)
