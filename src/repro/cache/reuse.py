"""Reuse-distance profiles and analytical hit-rate evaluation.

The exact engine (:mod:`repro.cache.simulator`) replays every address
through LRU state — the collect stage's entire wall time.  This module
replaces the replay with profile math, following the PPT-Multicore line
of work (Chennupati et al., arXiv 2104.05102): profile the address
stream *once* into a compact reuse-distance histogram, then map that
histogram onto any :class:`~repro.cache.geometry.CacheGeometry`
analytically.  A Table II/III sweep over many geometries evaluates one
profile repeatedly instead of re-simulating the stream per geometry.

Model
-----
For each access, the *reuse time* ``rt`` is the number of intervening
accesses since the previous access to the same cache line, measured
circularly (first occurrences wrap around to the line's last occurrence,
which models the steady state the exact engine reaches with its warm-up
pass).  The expected number of **distinct** lines in a window of ``T``
accesses is the StatStack estimator

    ``f(T) = sum_{m=0}^{T-1} P(rt > m)``,

computed in O(n) from the reuse-time histogram; the expected stack
distance of an access is then ``D = f(rt)``.  Given ``D`` distinct
intervening lines, a set-associative LRU cache with ``S`` sets and
associativity ``A`` hits iff fewer than ``A`` of them fall in the
access's own set.  The ``D`` intervening lines are drawn from the
stream's ``W - 1`` other distinct lines, of which only the access's
set-mates can conflict: with the (contiguous-region) balanced mapping,
a set holds ``floor(W/S)`` or ``ceil(W/S)`` of the stream's lines, so
the number of same-set rivals seen is approximately
``Binomial(K, D / (W - 1))`` with ``K = occupancy - 1`` — the
set-size-swapped form of the hypergeometric draw.  This keeps the
classic sampled-set binomial behavior for ``W >> S * A`` while being
*exact* in the conflict-free regime (``ceil(W/S) <= A`` implies every
hit), where the independent-mapping binomial of PPT-Multicore
overpredicts conflict misses.  Fully associative levels are exact
(``hit iff D < A``).

Congruence refinement
---------------------
Set-sampling models assume intervening lines land on sets uniformly,
which stencils and power-of-two strides violate badly: a 4096-element
stencil offset is exactly 512 lines — congruent modulo any set count
that divides 512 — so its rivals *always* share the access's set and a
2-way cache thrashes where the binomial predicts free hits.  For
streams containing any deterministic pattern the profiler therefore
also measures, for every power-of-two modulus ``M`` up to
``MAX_CONGRUENCE_MODULUS``, the *congruent* reuse distance: the
expected number of distinct intervening lines congruent to the target
modulo ``M``, computed on each congruence class's own timeline with
the same StatStack machinery.  Evaluating a geometry with ``S`` sets
picks the largest stored modulus dividing ``S`` and asks directly
whether the ``A``-way set can hold the measured congruent rivals — the
deterministic conflict structure is observed, not assumed.  Streams
made of purely random patterns cannot carry systematic congruence, so
they skip the extra passes and keep the single-argsort profile cost.

First touches and cross-block eviction
--------------------------------------
A block's *first* access to each line has no preceding same-line access
inside the block's own stream; whether it hits depends on what survived
since the block's previous execution.  The exact engine runs blocks in
program order, so the surviving state was filtered through every
*other* block's traffic.  The profile therefore keeps first-touch
accesses out of the interior histograms and records them per
instruction as ``(first_counts, first_distances)``, where the distance
is the block's own circular wrap distance; evaluation adds the
caller-supplied ``extra_lines`` — the distinct lines the rest of the
program touches between two executions of this block — before asking
the occupancy model whether the line survived.  A single-block program
has ``extra_lines = 0`` and recovers the pure steady-state circular
model.

Hierarchy levels are evaluated *standalone* against the full
stream's profile and monotonized, which approximates exclusive
miss-stream filtering well for stationary streams (DESIGN.md §7.8
discusses the error sources and when to prefer ``--cache-engine exact``).

Everything is vectorized numpy: one stable argsort plus bincounts per
(stream, line size) profile, a dot product per (profile, geometry)
evaluation.  Profiles are content-addressed by the stream's *semantics*
(pattern reprs, counts, chunking, root seed) — deliberately independent
of the cache geometry — so one profile serves every geometry and every
hierarchy that shares a line size.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.obs.metrics import REGISTRY
from repro.util.rng import DEFAULT_ROOT_SEED, RngStream

#: reuse times below this stay exact histogram bins; larger ones are
#: log-quantized so profile size stays bounded for multi-million-access
#: streams (hit probabilities vary slowly at large distances)
EXACT_BINS = 2048

#: log-quantization resolution above EXACT_BINS: bins per octave
BINS_PER_OCTAVE = 64

#: largest power-of-two modulus congruent reuse distances are measured
#: at; covers every set count in the named hierarchies, and any larger
#: power-of-two set count still divides into it conservatively
MAX_CONGRUENCE_MODULUS = 8192

#: the moduli a congruence-profiled stream measures (2, 4, ..., 8192)
CONGRUENCE_MODULI = tuple(
    2 ** k for k in range(1, MAX_CONGRUENCE_MODULUS.bit_length())
)


def congruence_moduli_for(
    patterns: Sequence, set_counts: Optional[Sequence[int]] = None
) -> Tuple[int, ...]:
    """Which congruence moduli a block's stream should be profiled at.

    Purely random patterns cannot produce systematic set congruence, so
    all-random blocks skip the per-modulus passes entirely (this is the
    common case for the synthetic sweep workloads and keeps profiling a
    single argsort).  Any deterministic pattern — strided, stencil,
    pointer chase — can alias power-of-two set indexing; with
    ``set_counts`` (the target levels' set counts) only the moduli
    evaluation will actually pick are measured — each costs a pass over
    the stream — while ``None`` measures the full ladder, serving any
    future geometry.  Profiles cached with fewer moduli are extended on
    demand by :func:`profiles_for`.
    """
    from repro.memstream.patterns import RandomPattern

    if all(isinstance(p, RandomPattern) for p in patterns):
        return ()
    if set_counts is None:
        return CONGRUENCE_MODULI
    needed = set()
    for s in set_counts:
        if s <= 1:
            continue
        fits = [m for m in CONGRUENCE_MODULI if s % m == 0]
        if fits:
            needed.add(max(fits))
    return tuple(sorted(needed))


def _line_runs(
    lines: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group a line stream's accesses by line, in access order.

    One stable argsort; returns ``(order, pos, starts, ends)`` where
    ``pos = order`` as int64 positions, and ``starts``/``ends`` bound
    each line's run inside the sorted view.
    """
    n = lines.shape[0]
    order = np.argsort(lines, kind="stable")
    s_lines = lines[order]
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.not_equal(s_lines[1:], s_lines[:-1], out=new_run[1:])
    starts = np.flatnonzero(new_run)
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:] - 1
    ends[-1] = n - 1
    return order, order.astype(np.int64), starts, ends


def _reuse_on_timeline(time, wrap, order, pos, starts, ends) -> np.ndarray:
    """Reuse gaps between same-line accesses on an arbitrary timeline.

    ``time[i]`` is access ``i``'s tick on its timeline (global position,
    or rank within a congruence class); ``wrap`` is the timeline's total
    tick count (scalar, or per-access array for class timelines).  The
    gap is the tick count strictly between consecutive same-line
    accesses; first occurrences wrap around to the line's last.
    """
    n = pos.shape[0]
    t = time[pos]
    rt_sorted = np.empty(n, dtype=np.int64)
    rt_sorted[1:] = t[1:] - t[:-1] - 1
    w = wrap[pos[starts]] if isinstance(wrap, np.ndarray) else wrap
    rt_sorted[starts] = t[starts] + w - t[ends] - 1
    rt = np.empty(n, dtype=np.int64)
    rt[order] = rt_sorted
    return rt


def _subset_runs(
    lines: np.ndarray, runs: Tuple, keep: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Derive :func:`_line_runs` of ``lines[keep]`` from the full runs.

    Dropping accesses preserves relative order, so the subsequence's
    sorted view is the full sorted view filtered to kept accesses —
    no second argsort over the (large-valued) line ids.
    """
    order, _pos, _starts, _ends = runs
    newpos = np.cumsum(keep) - 1
    order_kept = order[keep[order]]
    s_lines = lines[order_kept]
    m = s_lines.shape[0]
    order_sub = newpos[order_kept]
    new_run = np.empty(m, dtype=bool)
    new_run[0] = True
    np.not_equal(s_lines[1:], s_lines[:-1], out=new_run[1:])
    starts = np.flatnonzero(new_run)
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:] - 1
    ends[-1] = m - 1
    return order_sub, order_sub.astype(np.int64), starts, ends


def reuse_times(lines: np.ndarray) -> Tuple[np.ndarray, int]:
    """Per-access circular reuse times of a line-id stream.

    ``rt[i]`` counts the accesses strictly between access ``i`` and the
    previous access to the same line; a line's first occurrence wraps
    around to its last (a line touched once in ``n`` accesses gets
    ``n - 1``), which models the steady state the exact engine reaches
    with its warm-up pass.  Returns ``(rt, n_distinct_lines)``.
    """
    n = lines.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0
    order, pos, starts, ends = _line_runs(lines)
    rt = _reuse_on_timeline(
        np.arange(n, dtype=np.int64), n, order, pos, starts, ends
    )
    return rt, int(starts.shape[0])


def class_reuse_times(
    lines: np.ndarray,
    modulus: int,
    runs: Optional[Tuple] = None,
) -> np.ndarray:
    """Circular reuse times on each congruence class's own timeline.

    ``rtc[i]`` counts the accesses to ``i``'s congruence class
    (``line mod modulus``) strictly between access ``i`` and the
    previous access to the same line.  Fed through
    :func:`expected_distances` this yields the expected number of
    distinct *congruent* intervening lines — for a cache whose set
    count is a multiple of ``modulus``, exactly the rivals that can
    evict the access's line.  ``runs`` lets callers share one
    :func:`_line_runs` result across moduli.
    """
    n = lines.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if runs is None:
        runs = _line_runs(lines)
    order, pos, starts, ends = runs
    cls = lines % modulus
    corder = np.argsort(cls, kind="stable")
    ccounts = np.bincount(cls, minlength=modulus)
    cstarts = np.cumsum(ccounts) - ccounts
    classrank = np.empty(n, dtype=np.int64)
    classrank[corder] = np.arange(n, dtype=np.int64) - cstarts[cls[corder]]
    classtotal = ccounts[cls]
    return _reuse_on_timeline(classrank, classtotal, order, pos, starts, ends)


def expected_distances(rt: np.ndarray) -> np.ndarray:
    """StatStack conversion: reuse times -> expected stack distances.

    ``f(T) = sum_{m<T} P(rt > m)`` is the expected number of distinct
    lines among ``T`` consecutive accesses of a stream with this
    reuse-time distribution; the estimate for an access with reuse time
    ``rt`` is ``f(rt)``.  Exact for deterministic sweeps (every ``rt``
    equal), unbiased for stationary mixes.
    """
    n = rt.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    hist = np.bincount(rt, minlength=n)
    tail = n - np.cumsum(hist)  # tail[m] = #{rt > m}
    f = np.empty(n + 1, dtype=np.float64)
    f[0] = 0.0
    np.cumsum(tail, out=f[1:])
    f /= n
    return f[rt]


def distance_moments(rt: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """StatStack mean *and variance* of the distinct-line count.

    Same window estimator as :func:`expected_distances`, plus the
    independent-Bernoulli variance ``Var(T) = sum_{m<T} p_m (1-p_m)``
    with ``p_m = P(rt > m)``.  The variance distinguishes deterministic
    streams (every window identical, variance zero — the distance *is*
    the rival count) from stochastic mixes whose windows genuinely
    spread around the mean.
    """
    n = rt.shape[0]
    if n == 0:
        z = np.zeros(0, dtype=np.float64)
        return z, z.copy()
    hist = np.bincount(rt, minlength=n)
    p = (n - np.cumsum(hist)) / n  # p[m] = P(rt > m)
    f = np.empty(n + 1, dtype=np.float64)
    f[0] = 0.0
    np.cumsum(p, out=f[1:])
    v = np.empty(n + 1, dtype=np.float64)
    v[0] = 0.0
    np.cumsum(p * (1.0 - p), out=v[1:])
    return f[rt], v[rt]


def _binomial_tail(n_trials, p: np.ndarray, k_max: int) -> np.ndarray:
    """``P(Binomial(n_trials, p) <= k_max)`` per element of ``p``.

    ``n_trials`` may be a scalar or an array aligned with ``p``.
    Iterative-term recurrence (no scipy): ``t_0 = (1-p)^n`` and
    ``t_{j+1} = t_j * (n-j)/(j+1) * p/(1-p)``, summed for
    ``j <= k_max``; the ``(n-j)`` factor is floored at zero so the sum
    closes exactly at the support bound.  ``p = 1`` is handled by the
    support bound.
    """
    n = np.asarray(n_trials, dtype=np.float64)
    safe = np.clip(p, 0.0, 1.0 - 1e-15)
    term = np.exp(n * np.log1p(-safe)) * np.ones_like(p)
    total = term.copy()
    ratio = safe / (1.0 - safe)
    for j in range(int(k_max)):
        term = term * (np.maximum(n - j, 0.0) / (j + 1.0)) * ratio
        total += term
    total = np.where(n <= k_max, 1.0, total)
    # every rival is seen, and k_max of them don't fit: certain miss
    total[(p >= 1.0) & np.broadcast_to(n > k_max, p.shape)] = 0.0
    np.clip(total, 0.0, 1.0, out=total)
    return total


def hit_probability(
    distances: np.ndarray, geometry: CacheGeometry, n_lines: int
) -> np.ndarray:
    """P(hit) for accesses with expected stack distance ``D``.

    ``n_lines`` is the stream's distinct-line working set ``W`` at this
    line size.  Fully associative caches are exact: a hit iff fewer
    than ``A`` distinct lines intervened (linearly interpolated between
    integer distances).  Otherwise an access conflicts only with its
    set-mates: under the balanced mapping a set holds ``floor(W/S)`` or
    ``ceil(W/S)`` of the stream's lines, and the number of rivals among
    the ``D`` intervening lines (drawn from the ``W - 1`` others) is
    ``~ Binomial(K, D/(W-1))`` with ``K = occupancy - 1``; a hit needs
    at most ``A - 1`` of them.  Mixing the two occupancies by their
    line mass gives the per-access hit probability.
    """
    d = np.asarray(distances, dtype=np.float64)
    n_sets = geometry.n_sets
    assoc = geometry.associativity
    if n_sets == 1:
        return np.clip(float(assoc) - d, 0.0, 1.0)
    if n_lines <= 1:
        return np.ones_like(d)
    occ_lo, extra = divmod(n_lines, n_sets)
    # weight of each occupancy class = its share of the stream's lines
    w_hi = extra * (occ_lo + 1) / n_lines
    p_seen = np.clip(d / (n_lines - 1), 0.0, 1.0)
    prob = np.zeros_like(d)
    if w_hi < 1.0 and occ_lo > 0:
        prob += (1.0 - w_hi) * _binomial_tail(occ_lo - 1, p_seen, assoc - 1)
    elif w_hi < 1.0:
        prob += 1.0 - w_hi  # empty-but-target sets cannot conflict
    if w_hi > 0.0:
        prob += w_hi * _binomial_tail(occ_lo, p_seen, assoc - 1)
    # fewer distinct intervening lines than ways cannot miss
    prob[d <= assoc - 1] = 1.0
    np.clip(prob, 0.0, 1.0, out=prob)
    return prob


def congruent_hit_probability(
    distances: np.ndarray,
    variances: np.ndarray,
    geometry: CacheGeometry,
    n_lines: int,
    modulus: Optional[int] = None,
) -> np.ndarray:
    """P(hit) from *measured* congruent stack distances.

    ``distances``/``variances`` are the mean and variance of the count
    of distinct intervening lines congruent to the access modulo a
    divisor of the geometry's set count — the rivals observed on the
    set's own timeline, rather than thinned from the global stack
    distance by a uniform-mapping assumption.  An access hits iff at
    most ``A - 1`` rivals intervened; the rival count is modeled as the
    moment-matched binomial ``Binomial(n, D/n)`` with
    ``n = D^2 / (D - V)``, which collapses to a point mass for
    deterministic streams (``V = 0`` makes a miss at ``D >= A`` and a
    hit below it *certain*) and spreads like the sampled-set binomial
    when windows genuinely vary.  ``n`` is kept within
    ``[ceil(D), max(occupancy - 1, ceil(D))]`` so the support never
    exceeds the set's resident population.
    """
    d = np.asarray(distances, dtype=np.float64)
    v = np.asarray(variances, dtype=np.float64)
    assoc = geometry.associativity
    if n_lines <= 1:
        return np.ones_like(d)
    n_sets = geometry.n_sets
    if modulus is not None and modulus < n_sets:
        # The profiled modulus only divides the set count (e.g. 8 for a
        # Table III 24-set level): a mod-M congruent line lands in the
        # access's actual set with probability M/S.  Binomially thin
        # the measured count — power-of-two set counts always have
        # M = S and skip this, keeping deterministic conflicts exact.
        ratio = modulus / n_sets
        v = v * ratio * ratio + d * ratio * (1.0 - ratio)
        d = d * ratio
    occ = -(-n_lines // n_sets)  # ceil: resident lines per set
    lo = np.ceil(d)
    hi = np.maximum(float(max(occ - 1, 1)), lo)
    spread = d - v
    n_trials = np.where(
        spread > 1e-12,
        np.clip(np.divide(d * d, spread, out=np.ones_like(d),
                          where=spread > 1e-12), lo, hi),
        hi,
    )
    n_trials = np.maximum(n_trials, 1.0)
    p_seen = np.divide(d, n_trials, out=np.zeros_like(d), where=n_trials > 0)
    prob = _binomial_tail(n_trials, p_seen, assoc - 1)
    prob[d == 0.0] = 1.0
    np.clip(prob, 0.0, 1.0, out=prob)
    return prob


@dataclass
class ReuseProfile:
    """Compact per-instruction reuse-distance histogram of one stream.

    ``counts[i, b]`` is how many of instruction ``i``'s *interior*
    accesses (those with a same-line predecessor in the stream) have
    expected stack distance ``distances[b]`` (line-granular, for lines
    of ``line_size`` bytes); ``totals[i]`` is instruction ``i``'s full
    access count; ``n_lines`` is the stream's distinct-line working
    set.  First touches are split into a parallel histogram
    (``first_distances``/``first_counts``, same binning) over the
    block's circular-wrap stack distances so evaluation can add
    cross-block traffic (see module docstring) while preserving the
    wrap-distance distribution.  ``congruence`` maps each profiled
    modulus ``M``
    to the same histogram shape over *congruent* stack distances
    (distinct intervening lines sharing the access's line index mod
    ``M``); it is empty for all-random streams.  The profile knows
    nothing about any cache geometry — that binding happens at
    evaluation time.
    """

    line_size: int
    n_accesses: int
    n_lines: int
    totals: np.ndarray  # (n_instr,) int64
    distances: np.ndarray  # (n_bins,) float64
    counts: np.ndarray  # (n_instr, n_bins) int64
    first_distances: np.ndarray  # (n_bins_f,) float64
    first_counts: np.ndarray  # (n_instr, n_bins_f) int64
    #: modulus -> (distances (n_bins_m,), variances (n_bins_m,),
    #: counts (n_instr, n_bins_m))
    congruence: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )

    def eval_modulus(self, n_sets: int) -> Optional[int]:
        """Largest profiled modulus dividing ``n_sets`` (None if none)."""
        fits = [m for m in self.congruence if n_sets % m == 0]
        return max(fits) if fits else None

    def level_hit_rates(
        self, geometry: CacheGeometry, extra_lines: float = 0.0
    ) -> np.ndarray:
        """Per-instruction standalone hit rates against one geometry.

        ``extra_lines`` is the distinct-line traffic the rest of the
        program pushes through the cache between two executions of this
        stream's block; it only affects first-touch survival (interior
        reuse happens inside one execution of the block's loop nest).
        """
        if geometry.line_size != self.line_size:
            raise ValueError(
                f"profile is line_size={self.line_size}, geometry "
                f"{geometry.name!r} has line_size={geometry.line_size}"
            )
        REGISTRY.inc("cachesim.reuse.evals")
        modulus = (
            self.eval_modulus(geometry.n_sets)
            if geometry.n_sets > 1
            else None
        )
        if modulus is not None:
            dists, variances, counts = self.congruence[modulus]
            p = congruent_hit_probability(
                dists, variances, geometry, self.n_lines, modulus
            )
        else:
            counts = self.counts
            p = hit_probability(self.distances, geometry, self.n_lines)
        hits = counts @ p
        if self.first_counts.size:
            # first touches survive iff the block's own working set plus
            # the intervening cross-block traffic still fits; congruence
            # structure washes out under that mixed traffic, so the
            # global occupancy model applies.
            w_eff = self.n_lines + int(np.ceil(extra_lines))
            p_first = hit_probability(
                self.first_distances + extra_lines, geometry, w_eff
            )
            hits = hits + self.first_counts @ p_first
        return hits / np.maximum(self.totals, 1)


def _histogram(
    instr_idx: np.ndarray,
    rt: np.ndarray,
    values: Tuple[np.ndarray, ...],
    n_instructions: int,
) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
    """Per-instruction histogram keyed on reuse time.

    Bin key: exact below ``EXACT_BINS``, log-quantized above.  Each
    array in ``values`` (distances, variances, ...) is reduced to its
    count-weighted per-bin mean; returns ``(means, counts)`` with
    ``counts`` of shape ``(n_instructions, n_bins)``.
    """
    if rt.shape[0] == 0:
        return (
            tuple(np.zeros(0, dtype=np.float64) for _ in values),
            np.zeros((n_instructions, 0), dtype=np.int64),
        )
    key = rt
    if int(rt.max()) >= EXACT_BINS:
        coarse = rt >= EXACT_BINS
        key = rt.copy()
        key[coarse] = EXACT_BINS + (
            BINS_PER_OCTAVE * np.log2(rt[coarse] / EXACT_BINS)
        ).astype(np.int64)
    # the quantized key space is tiny (a few thousand values), so a
    # bincount lookup table beats np.unique's full sort of the stream
    occupied = np.bincount(key)
    uniq = np.flatnonzero(occupied)
    n_bins = uniq.shape[0]
    lookup = np.zeros(occupied.shape[0], dtype=np.int64)
    lookup[uniq] = np.arange(n_bins, dtype=np.int64)
    inverse = lookup[key]
    counts = np.bincount(
        instr_idx.astype(np.int64) * n_bins + inverse,
        minlength=n_instructions * n_bins,
    ).reshape(n_instructions, n_bins)
    bin_totals = np.maximum(np.bincount(inverse, minlength=n_bins), 1)
    means = tuple(
        np.bincount(inverse, weights=val, minlength=n_bins) / bin_totals
        for val in values
    )
    return means, counts


def profile_stream(
    instr_idx: np.ndarray,
    addresses: np.ndarray,
    n_instructions: int,
    line_size: int,
    moduli: Sequence[int] = (),
) -> ReuseProfile:
    """Profile one materialized ``(instr_idx, addresses)`` stream.

    ``moduli`` lists the congruence moduli to measure alongside the
    global profile (see :func:`congruence_moduli_for`); each costs one
    extra stable argsort over the stream.
    """
    n = addresses.shape[0]
    REGISTRY.inc("cachesim.reuse.profiles")
    REGISTRY.inc("cachesim.reuse.accesses", int(n))
    if n == 0:
        return ReuseProfile(
            line_size=line_size,
            n_accesses=0,
            n_lines=0,
            totals=np.zeros(n_instructions, dtype=np.int64),
            distances=np.zeros(0, dtype=np.float64),
            counts=np.zeros((n_instructions, 0), dtype=np.int64),
            first_distances=np.zeros(0, dtype=np.float64),
            first_counts=np.zeros((n_instructions, 0), dtype=np.int64),
        )
    if line_size & (line_size - 1) == 0:
        lines = addresses >> (int(line_size).bit_length() - 1)
    else:
        lines = addresses // line_size
    runs = _line_runs(lines)
    order, pos, starts, ends = runs
    n_lines = int(starts.shape[0])
    rt = _reuse_on_timeline(
        np.arange(n, dtype=np.int64), n, order, pos, starts, ends
    )
    # each line's first occurrence is first on *every* timeline; those
    # accesses are scored separately with cross-block context at eval
    first = np.zeros(n, dtype=bool)
    first[order[starts]] = True
    interior = ~first
    iidx = instr_idx.astype(np.int64)
    fd = expected_distances(rt)
    (distances,), counts = _histogram(
        iidx[interior], rt[interior], (fd[interior],), n_instructions
    )
    (first_distances,), first_counts = _histogram(
        iidx[first], rt[first], (fd[first],), n_instructions
    )
    congruence: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for modulus in moduli:
        rtc = class_reuse_times(lines, modulus, runs=runs)
        # Estimate distances on the repeat-deduplicated class timeline:
        # immediate same-line repeats (rtc == 0, certain hits with zero
        # intervening lines) otherwise flood the pooled reuse
        # distribution with zero mass and bias the StatStack window
        # estimate low for the bursty deterministic streams this path
        # exists for.  On the deduplicated timeline every tick is a
        # distinct-line candidate, making cyclic sweeps exact.
        keep = rtc != 0
        if keep.all():
            dist_c, var_c = distance_moments(rtc)
            key_c = rtc
        elif not keep.any():
            # every access an immediate repeat: zero intervening lines
            dist_c = np.zeros(n, dtype=np.float64)
            var_c = np.zeros(n, dtype=np.float64)
            key_c = np.zeros(n, dtype=np.int64)
        else:
            idx = np.flatnonzero(keep)
            rtc_sub = class_reuse_times(
                lines[idx], modulus, runs=_subset_runs(lines, runs, keep)
            )
            dist_sub, var_sub = distance_moments(rtc_sub)
            dist_c = np.zeros(n, dtype=np.float64)
            dist_c[idx] = dist_sub
            var_c = np.zeros(n, dtype=np.float64)
            var_c[idx] = var_sub
            key_c = np.zeros(n, dtype=np.int64)
            key_c[idx] = rtc_sub
        (dmean, vmean), ccounts = _histogram(
            iidx[interior],
            key_c[interior],
            (dist_c[interior], var_c[interior]),
            n_instructions,
        )
        congruence[modulus] = (dmean, vmean, ccounts)
    return ReuseProfile(
        line_size=line_size,
        n_accesses=int(n),
        n_lines=n_lines,
        totals=counts.sum(axis=1) + first_counts.sum(axis=1),
        distances=distances,
        counts=counts,
        first_distances=first_distances,
        first_counts=first_counts,
        congruence=congruence,
    )


def hierarchy_hit_rates(
    profiles: Dict[int, ReuseProfile],
    hierarchy: CacheHierarchy,
    extra_lines: Optional[Dict[int, float]] = None,
) -> np.ndarray:
    """Per-instruction *cumulative* hit rates, shape (n_instr, n_levels).

    Each level is evaluated standalone against the profile matching its
    line size; ``np.maximum.accumulate`` enforces the cumulative
    convention (a level at least as large as an inner one serves at
    least as many references in steady state).  ``extra_lines`` maps
    line size to the cross-block distinct-line traffic first-touch
    survival is charged with (see :func:`cross_block_lines`).
    """
    extra_lines = extra_lines or {}
    rates = np.stack(
        [
            profiles[g.line_size].level_hit_rates(
                g, extra_lines.get(g.line_size, 0.0)
            )
            for g in hierarchy.levels
        ],
        axis=1,
    )
    return np.maximum.accumulate(rates, axis=1)


def aggregate_rates(
    profiles: Dict[int, ReuseProfile],
    hierarchy: CacheHierarchy,
    extra_lines: Optional[Dict[int, float]] = None,
) -> np.ndarray:
    """Stream-aggregate cumulative hit rates, shape (n_levels,)."""
    rates = hierarchy_hit_rates(profiles, hierarchy, extra_lines)
    totals = next(iter(profiles.values())).totals.astype(np.float64)
    total = totals.sum()
    if total <= 0:
        return np.zeros(hierarchy.n_levels)
    return (totals @ rates) / total


def cross_block_lines(
    block_streams: Sequence[Tuple[Sequence, Sequence[int]]],
    line_size: int,
) -> np.ndarray:
    """Per-block cross-block eviction traffic, in distinct lines.

    ``block_streams`` holds each profiled block's ``(patterns, counts)``
    at its sampled length.  The exact engine executes blocks in program
    order, so between two executions of block ``b`` every other block
    pushes its own working set through the cache; the returned
    ``extras[b]`` estimates those distinct lines as the union of the
    *other* blocks' pattern regions (deduplicated by region identity,
    bounded by each instruction's access count, and excluding regions
    block ``b`` itself touches — traffic to a shared region refreshes
    rather than evicts).
    """

    def regions_of(patterns, counts):
        regions: Dict[Tuple[int, int], int] = {}
        for p, c in zip(patterns, counts):
            fp = int(p.footprint_bytes())
            lines = min(-(-fp // line_size), int(c))
            key = (int(p.base), fp)
            regions[key] = max(regions.get(key, 0), lines)
        return regions

    per_block = [regions_of(p, c) for p, c in block_streams]
    extras = np.zeros(len(per_block), dtype=np.float64)
    for i, own in enumerate(per_block):
        union: Dict[Tuple[int, int], int] = {}
        for j, other in enumerate(per_block):
            if j == i:
                continue
            for key, lines in other.items():
                if key in own:
                    continue
                union[key] = max(union.get(key, 0), lines)
        extras[i] = float(sum(union.values()))
    return extras


# ----------------------------------------------------------------------
# content addressing


def stream_key(
    patterns: Sequence,
    counts: Sequence[int],
    chunk: int,
    root: int = DEFAULT_ROOT_SEED,
) -> str:
    """Content digest of one block stream's *semantics*.

    Patterns are frozen dataclasses with stable reprs (the sigcache
    keys traces the same way), so equal inputs hash equal across
    processes.  Geometry is deliberately absent: the same key serves
    every hierarchy, which is what makes multi-geometry sweeps reuse
    one profile per block.
    """
    h = hashlib.sha256()
    h.update(b"reuse-stream-v1")
    h.update(int(root).to_bytes(16, "little", signed=True))
    h.update(int(chunk).to_bytes(8, "little"))
    for pattern, count in zip(patterns, counts):
        token = f"{pattern!r}*{int(count)}".encode("utf-8")
        h.update(len(token).to_bytes(8, "little"))
        h.update(token)
    return h.hexdigest()


def profiling_rng(key: str, root: int = DEFAULT_ROOT_SEED) -> RngStream:
    """The keyed stream that generates a profiled block's addresses.

    Derived from the content key, *not* from the collect path (which
    includes the hierarchy name): two collections against different
    hierarchies profile the identical stream and share the profile.
    """
    return RngStream("cache-reuse", key, root=root)


def profile_key(skey: str, line_size: int) -> str:
    """Cache key of one (stream, line size) profile.

    The version tag covers the on-disk format *and* the derivation of
    congruence moduli from the stream's patterns (both deterministic
    functions of the keyed inputs).
    """
    return hashlib.sha256(
        f"reuse-profile-v3|{skey}|{int(line_size)}".encode("utf-8")
    ).hexdigest()


@dataclass
class ProfileCacheStats:
    """Per-tier tallies of one :class:`ProfileCache` instance.

    The memory tier answers without touching disk; the disk tier pays a
    ``.npz`` load; a miss pays a full re-profile.  ``evictions`` counts
    memory-LRU ejections — the signal that ``mem_entries`` is undersized
    for the working set (serve-mode capacity tuning reads this from the
    run manifest).  Every bump mirrors into the global metrics registry
    under ``cachesim.reuse.*``.
    """

    mem_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"cachesim.reuse.{name}", n)

    def to_dict(self) -> dict:
        return {
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def __str__(self) -> str:
        return (
            f"{self.mem_hits} mem hits, {self.disk_hits} disk hits, "
            f"{self.misses} misses, {self.stores} stores, "
            f"{self.evictions} evictions"
        )


class ProfileCache:
    """In-memory LRU + optional on-disk store of reuse profiles.

    The disk layout mirrors the signature cache (content-keyed files,
    atomic tempfile-then-replace writes, corrupt entries silently
    recomputed); profiles live in ``.npz`` files under ``root``.
    """

    def __init__(self, root: Optional[Path] = None, mem_entries: int = 128):
        self.root = Path(root) if root is not None else None
        self.mem_entries = mem_entries
        self._mem: "OrderedDict[str, ReuseProfile]" = OrderedDict()
        self.stats = ProfileCacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def get(self, key: str) -> Optional[ReuseProfile]:
        profile = self._mem.get(key)
        if profile is not None:
            self._mem.move_to_end(key)
            self.stats.bump("mem_hits")
            REGISTRY.inc("cachesim.reuse.profile_hits")
            return profile
        if self.root is None:
            self.stats.bump("misses")
            return None
        path = self._path(key)
        try:
            with np.load(path) as data:
                congruence = {
                    int(m): (
                        data[f"m{int(m)}_distances"],
                        data[f"m{int(m)}_variances"],
                        data[f"m{int(m)}_counts"],
                    )
                    for m in data["moduli"]
                }
                profile = ReuseProfile(
                    line_size=int(data["line_size"]),
                    n_accesses=int(data["n_accesses"]),
                    n_lines=int(data["n_lines"]),
                    totals=data["totals"],
                    distances=data["distances"],
                    counts=data["counts"],
                    first_counts=data["first_counts"],
                    first_distances=data["first_distances"],
                    congruence=congruence,
                )
        except (OSError, KeyError, ValueError):
            self.stats.bump("misses")
            return None  # absent or corrupt: recompute
        self._remember(key, profile)
        self.stats.bump("disk_hits")
        REGISTRY.inc("cachesim.reuse.profile_hits")
        return profile

    def put(self, key: str, profile: ReuseProfile) -> None:
        self.stats.bump("stores")
        self._remember(key, profile)
        if self.root is None:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            arrays = {}
            for m, (dists, variances, counts) in profile.congruence.items():
                arrays[f"m{int(m)}_distances"] = dists
                arrays[f"m{int(m)}_variances"] = variances
                arrays[f"m{int(m)}_counts"] = counts
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    line_size=np.int64(profile.line_size),
                    n_accesses=np.int64(profile.n_accesses),
                    n_lines=np.int64(profile.n_lines),
                    totals=profile.totals,
                    distances=profile.distances,
                    counts=profile.counts,
                    first_counts=profile.first_counts,
                    first_distances=profile.first_distances,
                    moduli=np.array(
                        sorted(profile.congruence), dtype=np.int64
                    ),
                    **arrays,
                )
            tmp.replace(path)
        except OSError:
            pass  # disk store is best-effort; memory entry stands

    def _remember(self, key: str, profile: ReuseProfile) -> None:
        self._mem[key] = profile
        self._mem.move_to_end(key)
        while len(self._mem) > self.mem_entries:
            self._mem.popitem(last=False)
            self.stats.bump("evictions")

    def clear(self) -> None:
        self._mem.clear()


#: process-global profile cache (memory-only until configured)
_PROFILE_CACHE = ProfileCache()


def profile_cache() -> ProfileCache:
    return _PROFILE_CACHE


def configure_profile_cache(root: Optional[Path]) -> ProfileCache:
    """(Re)bind the global profile cache, optionally disk-backed."""
    global _PROFILE_CACHE
    _PROFILE_CACHE = ProfileCache(root)
    return _PROFILE_CACHE


def line_sizes_of(hierarchy: CacheHierarchy) -> Tuple[int, ...]:
    """Distinct line sizes a hierarchy needs profiles for, ascending."""
    return tuple(sorted({g.line_size for g in hierarchy.levels}))


def profiles_for(
    patterns: Sequence,
    counts: Sequence[int],
    line_sizes: Iterable[int],
    *,
    chunk: int,
    root: int = DEFAULT_ROOT_SEED,
    cache: Optional[ProfileCache] = None,
    moduli: Optional[Sequence[int]] = None,
) -> Dict[int, ReuseProfile]:
    """Fetch-or-compute the profiles of one block stream.

    The address stream is generated (from the content-keyed rng) only
    when at least one line size misses the cache, and then only once
    for all of them.  ``moduli`` lists the congruence moduli the caller
    will evaluate at (default: the full ladder for deterministic
    streams); a cached profile missing some of them is *extended* —
    only the missing moduli are measured — and re-stored, so a
    multi-hierarchy sweep accretes one union profile per stream
    instead of recomputing.
    """
    from repro.memstream.generator import interleave_streams

    cache = cache if cache is not None else _PROFILE_CACHE
    if moduli is None:
        moduli = congruence_moduli_for(patterns)
    skey = stream_key(patterns, counts, chunk, root)
    profiles: Dict[int, ReuseProfile] = {}
    missing: List[Tuple[int, Optional[ReuseProfile]]] = []
    for ls in line_sizes:
        cached = cache.get(profile_key(skey, ls))
        if cached is not None and all(
            m in cached.congruence for m in moduli
        ):
            profiles[ls] = cached
        else:
            missing.append((ls, cached))
    if missing:
        rng = profiling_rng(skey, root)
        idx_parts, addr_parts = [], []
        for instr_idx, addrs in interleave_streams(
            patterns, counts, rng, chunk=chunk
        ):
            idx_parts.append(instr_idx)
            addr_parts.append(addrs)
        instr_idx = (
            np.concatenate(idx_parts) if idx_parts
            else np.zeros(0, dtype=np.int32)
        )
        addresses = (
            np.concatenate(addr_parts) if addr_parts
            else np.zeros(0, dtype=np.int64)
        )
        for ls, cached in missing:
            if cached is None:
                profile = profile_stream(
                    instr_idx, addresses, len(patterns), ls, moduli=moduli
                )
            else:
                extra = [m for m in moduli if m not in cached.congruence]
                fresh = profile_stream(
                    instr_idx, addresses, len(patterns), ls, moduli=extra
                )
                cached.congruence.update(fresh.congruence)
                profile = cached
                REGISTRY.inc("cachesim.reuse.profile_extensions")
            cache.put(profile_key(skey, ls), profile)
            profiles[ls] = profile
    return profiles
