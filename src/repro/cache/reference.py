"""Scalar reference cache simulator for cross-validation.

Implements textbook set-associative LRU one access at a time.  It is
orders of magnitude slower than :class:`repro.cache.simulator.
HierarchySimulator` but trivially auditable; the test suite checks the
two produce identical hit sequences on every access-pattern class.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy


class ReferenceCacheLevel:
    """One set-associative LRU level, simulated scalar-ly."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        # per-set list of resident line ids, most recently used last
        self._sets: List[List[int]] = [[] for _ in range(geometry.n_sets)]

    def access(self, address: int) -> bool:
        """Simulate one access; return True on hit."""
        line = address // self.geometry.line_size
        set_id = line % self.geometry.n_sets
        resident = self._sets[set_id]
        if line in resident:
            resident.remove(line)
            resident.append(line)
            return True
        if len(resident) >= self.geometry.associativity:
            resident.pop(0)  # least recently used
        resident.append(line)
        return False


def simulate_reference(
    hierarchy: CacheHierarchy, addresses: Sequence[int]
) -> Tuple[np.ndarray, List[int]]:
    """Simulate ``addresses`` through ``hierarchy`` scalar-ly.

    Returns
    -------
    (deepest_hit_level, per_level_hits):
        ``deepest_hit_level[i]`` is the index of the level that served
        access ``i`` (``n_levels`` means main memory);
        ``per_level_hits[j]`` is the number of hits at level ``j``.
    """
    levels = [ReferenceCacheLevel(g) for g in hierarchy.levels]
    served = np.empty(len(addresses), dtype=np.int32)
    hits = [0] * len(levels)
    for i, addr in enumerate(addresses):
        addr = int(addr)
        level_idx = len(levels)
        for j, level in enumerate(levels):
            if level.access(addr):
                level_idx = j
                hits[j] += 1
                break
        # NOTE: on a miss in level j the access continues outward, and
        # the line is installed in every level it traversed (the
        # vectorized engine does the same by forwarding the miss stream).
        served[i] = level_idx
    return served, hits
