"""Cache engines: how an instrumented program's hit rates are obtained.

Two interchangeable engines sit behind signature collection
(``--cache-engine`` on the CLI,
:attr:`repro.instrument.collector.CollectorConfig.engine`):

``exact``
    The existing replay path — every address through
    :class:`~repro.cache.simulator.HierarchySimulator` (exact LRU,
    warm-up pass plus measured pass).  Bit-identical to what collection
    produced before engines existed.

``reuse``
    The analytical path of :mod:`repro.cache.reuse` — profile each
    block's stream once into a reuse-distance histogram, evaluate the
    profile against every hierarchy level in closed form.  One to two
    orders of magnitude faster, approximate (rates agree with ``exact``
    to ~1e-2); guarded by a keyed-RNG cross-engine spot check
    (:func:`repro.guard.gates.cache_engine_spot_check`) that refuses to
    return silently divergent results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.cache.reuse import (
    ProfileCache,
    congruence_moduli_for,
    cross_block_lines,
    hierarchy_hit_rates,
    line_sizes_of,
    profiles_for,
)
from repro.obs.metrics import REGISTRY
from repro.util.errors import CollectionError
from repro.util.rng import RngStream, stream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.guard.config import GuardConfig
    from repro.instrument.pebil import InstrumentationReport, InstrumentedProgram

#: recognized engine names, in CLI-choices order
ENGINE_NAMES = ("exact", "reuse")


class CacheEngine(ABC):
    """Strategy interface: instrumented program -> instrumentation report."""

    name: str = "?"

    @abstractmethod
    def run(
        self,
        instrumented: "InstrumentedProgram",
        rng: Optional[RngStream] = None,
    ) -> "InstrumentationReport":
        """Produce per-block observations for ``instrumented``."""


class ExactEngine(CacheEngine):
    """The replay engine: delegates to the simulator-backed run path."""

    name = "exact"

    def run(
        self,
        instrumented: "InstrumentedProgram",
        rng: Optional[RngStream] = None,
    ) -> "InstrumentationReport":
        return instrumented.run(rng)


class ReuseEngine(CacheEngine):
    """The analytical engine: reuse profiles instead of replay.

    Parameters
    ----------
    guard:
        Spot-check policy and tolerances; defaults to a fresh
        :class:`~repro.guard.config.GuardConfig` (check enabled).
        ``policy="off"`` disables the cross-engine check.
    cache:
        Profile store; defaults to the process-global
        :func:`repro.cache.reuse.profile_cache`.
    """

    name = "reuse"

    def __init__(
        self,
        guard: Optional["GuardConfig"] = None,
        cache: Optional[ProfileCache] = None,
    ):
        self._guard = guard
        self._cache = cache

    def run(
        self,
        instrumented: "InstrumentedProgram",
        rng: Optional[RngStream] = None,
    ) -> "InstrumentationReport":
        from repro.instrument.pebil import (
            BlockObservation,
            InstrumentationReport,
        )

        program = instrumented.program
        hierarchy = instrumented.hierarchy
        if rng is None:
            rng = stream("pebil", program.name, hierarchy.name)
        n_levels = hierarchy.n_levels
        line_sizes = line_sizes_of(hierarchy)
        observations: Dict[int, BlockObservation] = {}
        profiled: List[Tuple[object, int]] = []  # (block, sampled iters)
        streams: List[Tuple[list, list]] = []  # aligned (patterns, counts)
        for block in program.blocks:
            n_mem = len(block.mem_instructions)
            iters = instrumented._sampled_iterations(block)
            if n_mem == 0 or iters == 0:
                observations[block.block_id] = BlockObservation(
                    block_id=block.block_id,
                    sampled_iterations=iters,
                    full_iterations=block.exec_count,
                    accesses=np.zeros(n_mem, dtype=np.int64),
                    level_hits=np.zeros((n_mem, n_levels), dtype=np.int64),
                )
                continue
            profiled.append((block, iters))
            streams.append(
                (
                    [m.pattern for m in block.mem_instructions],
                    [m.per_iteration * iters for m in block.mem_instructions],
                )
            )
        # first-touch survival depends on the *other* blocks' traffic
        # between two program-order executions of a block
        extras = {ls: cross_block_lines(streams, ls) for ls in line_sizes}
        set_counts = [g.n_sets for g in hierarchy.levels]
        for b, (block, iters) in enumerate(profiled):
            patterns, counts = streams[b]
            profiles = profiles_for(
                patterns,
                counts,
                line_sizes,
                chunk=instrumented.chunk,
                root=rng.root,
                cache=self._cache,
                moduli=congruence_moduli_for(patterns, set_counts),
            )
            rates = hierarchy_hit_rates(
                profiles,
                hierarchy,
                {ls: float(extras[ls][b]) for ls in line_sizes},
            )
            totals = profiles[line_sizes[0]].totals
            # express cumulative rates as per-level hit counts so the
            # observation recomposes them exactly like the exact engine
            cum_hits = rates * totals[:, None]
            level_hits = np.diff(cum_hits, axis=1, prepend=0.0)
            observations[block.block_id] = BlockObservation(
                block_id=block.block_id,
                sampled_iterations=iters,
                full_iterations=block.exec_count,
                accesses=totals,
                level_hits=level_hits,
            )
            REGISTRY.inc("cachesim.reuse.blocks")
        self._spot_check(instrumented, profiled)
        return InstrumentationReport(
            program_name=program.name,
            hierarchy_name=hierarchy.name,
            observations=observations,
        )

    def _spot_check(self, instrumented, profiled) -> None:
        """Cross-engine guard gate: refuse silent reuse/exact divergence."""
        from repro.guard.config import GuardConfig
        from repro.guard.gates import cache_engine_spot_check

        guard = self._guard if self._guard is not None else GuardConfig()
        if not guard.enabled or not profiled:
            return
        outcome = cache_engine_spot_check(
            instrumented.hierarchy,
            profiled,
            config=guard,
            chunk=instrumented.chunk,
            seed_tokens=(
                instrumented.program.name,
                instrumented.hierarchy.name,
            ),
        )
        if outcome.flags:
            worst = max(outcome.flags, key=lambda f: f.score)
            raise CollectionError(
                f"reuse cache engine diverged from exact on "
                f"{len(outcome.flags)} spot-checked level(s); worst: block "
                f"{worst.block_id} {worst.feature} off by {worst.score:.4f} "
                f"(tolerance {worst.threshold:g}) — rerun with "
                f"--cache-engine exact or --guard off",
                stage="collect",
                task_key=f"cachesim:{instrumented.program.name}",
            )


def get_engine(
    name: str,
    *,
    guard: Optional["GuardConfig"] = None,
    cache: Optional[ProfileCache] = None,
) -> CacheEngine:
    """Build the named engine (``guard``/``cache`` apply to ``reuse``)."""
    if name == "exact":
        return ExactEngine()
    if name == "reuse":
        return ReuseEngine(guard=guard, cache=cache)
    raise ValueError(
        f"unknown cache engine {name!r}; known engines: {ENGINE_NAMES}"
    )
