"""Cache-level geometry: size, line size, associativity.

Geometry is pure configuration; simulation state lives in
:mod:`repro.cache.simulator`.  Sizes need not be powers of two (the
paper's Table III uses 12KB and 56KB L1 caches), but the derived set
count must come out integral.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import bytes_to_human
from repro.util.validation import ValidationError, check_positive, check_power_of_two


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_size:
        Line (block) size in bytes; must be a power of two.
    associativity:
        Ways per set; ``associativity == n_lines`` makes the level fully
        associative.
    name:
        Display label ("L1", "L2", ...).
    """

    size_bytes: int
    line_size: int = 64
    associativity: int = 8
    name: str = "L?"

    def __post_init__(self):
        check_positive("size_bytes", self.size_bytes)
        check_power_of_two("line_size", self.line_size)
        check_positive("associativity", self.associativity)
        if self.size_bytes % self.line_size:
            raise ValidationError(
                f"{self.name}: size {self.size_bytes} not a multiple of "
                f"line size {self.line_size}"
            )
        if self.n_lines % self.associativity:
            raise ValidationError(
                f"{self.name}: {self.n_lines} lines not divisible by "
                f"associativity {self.associativity}"
            )

    @property
    def n_lines(self) -> int:
        """Total number of lines."""
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_lines // self.associativity

    def describe(self) -> str:
        """One-line human description."""
        return (
            f"{self.name}: {bytes_to_human(self.size_bytes)}, "
            f"{self.line_size}B lines, {self.associativity}-way, "
            f"{self.n_sets} sets"
        )
