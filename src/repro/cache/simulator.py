"""Vectorized exact-LRU multi-level cache simulation.

The engine processes address chunks (tens of thousands of accesses) with
numpy-level parallelism while preserving exact LRU semantics:

1.  Accesses are grouped by cache set (stable sort), which preserves
    per-set access order — the only order LRU cares about.
2.  Back-to-back accesses to the same line within a set are *trivial
    hits* and are collapsed (they cannot change replacement state except
    recency, which the collapse preserves).
3.  The remaining accesses are replayed in *rounds*: round ``r`` carries
    the ``r``-th surviving access of every set.  Within a round all
    accesses touch distinct sets, so tag compare / LRU update is one
    vectorized gather-scatter over the state arrays.

The number of Python-level iterations is therefore the maximum per-set
access count in the chunk, typically two to three orders of magnitude
smaller than the chunk itself.  :mod:`repro.cache.reference` implements
the same semantics one access at a time; the test suite checks the two
agree bit-for-bit on every pattern class.

Fast paths (all bit-for-bit equivalent to the generic engine):

- Power-of-two set counts index sets with a bitmask instead of ``%``.
- Direct-mapped levels (associativity 1) skip the round replay: a hit is
  exactly "same line as the previous access to this set", so one
  shifted compare over the set-sorted stream resolves the whole chunk.
- Fully-associative levels (one set) replay through an ordered-dict LRU
  with O(1) updates instead of O(assoc) scans per round.
- When every level shares one line size and set counts are
  powers of two that do not decrease outward (true of every predefined
  hierarchy), the set-index bits of level *i* are a suffix of level
  *i+1*'s.  The miss stream is then kept in set-sorted order down the
  hierarchy and each outer level re-sorts only on the *new high bits*
  of its set index — reusing the inner level's sort permutation rather
  than re-sorting the chunk from scratch, and skipping the scatter back
  to program order entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.obs.metrics import REGISTRY

_EMPTY_TAG = np.int64(-1)


def _argsort_narrow(key: np.ndarray, key_range: int) -> np.ndarray:
    """Stable argsort of small-range non-negative integer keys.

    numpy's stable sort for integers is an LSB radix sort whose cost
    scales with the key width, so narrowing the dtype to the actual key
    range cuts the number of passes.
    """
    if key_range <= 1 << 8:
        key = key.astype(np.uint8)
    elif key_range <= 1 << 16:
        key = key.astype(np.uint16)
    elif key_range <= 1 << 32:
        key = key.astype(np.uint32)
    return np.argsort(key, kind="stable")


class _LevelState:
    """Mutable tag/recency state for one cache level."""

    __slots__ = (
        "geometry",
        "tags",
        "stamps",
        "time",
        "_line_shift",
        "_n_sets",
        "_assoc",
        "_set_mask",
        "_set_bits",
        "_lru",
    )

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        n_sets, assoc = geometry.n_sets, geometry.associativity
        self.tags = np.full((n_sets, assoc), _EMPTY_TAG, dtype=np.int64)
        self.stamps = np.zeros((n_sets, assoc), dtype=np.int64)
        self.time = 0
        self._line_shift = int(geometry.line_size).bit_length() - 1
        self._n_sets = n_sets
        self._assoc = assoc
        if n_sets & (n_sets - 1) == 0:
            self._set_mask = n_sets - 1
            self._set_bits = n_sets.bit_length() - 1
        else:
            self._set_mask = None
            self._set_bits = None
        # fully-associative levels keep their LRU order in a dict
        # (insertion-ordered, O(1) move-to-front) instead of the stamps
        self._lru: dict = {}

    def reset(self) -> None:
        self.tags.fill(_EMPTY_TAG)
        self.stamps.fill(0)
        self.time = 0
        self._lru.clear()

    def set_index(self, lines: np.ndarray) -> np.ndarray:
        if self._set_mask is not None:
            return lines & self._set_mask
        return lines % self._n_sets

    def access(self, addresses: np.ndarray) -> np.ndarray:
        """Simulate ``addresses`` in order; return per-access hit mask."""
        n = addresses.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        lines = addresses >> self._line_shift
        if self._n_sets == 1:
            return self._replay_fully_assoc(lines)
        sets = self.set_index(lines)
        order = _argsort_narrow(sets, self._n_sets)
        hits_sorted = self._replay_sorted(lines[order], sets[order])
        hits = np.empty(n, dtype=bool)
        hits[order] = hits_sorted
        return hits

    # -- replay kernels (inputs stably sorted by set id) ----------------

    def _replay_sorted(self, s_lines: np.ndarray, s_sets: np.ndarray) -> np.ndarray:
        if self._assoc == 1:
            return self._replay_direct_mapped(s_lines, s_sets)
        return self._replay_rounds(s_lines, s_sets)

    def _replay_fully_assoc(self, lines: np.ndarray) -> np.ndarray:
        """One-set LRU: ordered-dict replay, O(1) per distinct access.

        Consecutive repeats of one line are trivial hits (the line is
        MRU already), so only run heads touch the dict.
        """
        n = lines.shape[0]
        head = np.empty(n, dtype=bool)
        head[0] = True
        np.not_equal(lines[1:], lines[:-1], out=head[1:])
        hits = ~head
        lru = self._lru
        cap = self._assoc
        for i in np.flatnonzero(head).tolist():
            line = int(lines[i])
            if line in lru:
                del lru[line]
                lru[line] = None
                hits[i] = True
            else:
                if len(lru) >= cap:
                    del lru[next(iter(lru))]
                lru[line] = None
        return hits

    def _replay_direct_mapped(
        self, s_lines: np.ndarray, s_sets: np.ndarray
    ) -> np.ndarray:
        """Associativity-1: the resident line is simply the previous
        access to the set, so the whole chunk resolves with one shifted
        compare plus a boundary check against the stored tags."""
        n = s_lines.shape[0]
        hits = np.empty(n, dtype=bool)
        hits[0] = False
        same_set = s_sets[1:] == s_sets[:-1]
        np.logical_and(s_lines[1:] == s_lines[:-1], same_set, out=hits[1:])
        starts = np.flatnonzero(
            np.concatenate([[True], ~same_set])
        )
        first_sets = s_sets[starts]
        hits[starts] = self.tags[first_sets, 0] == s_lines[starts]
        ends = np.empty(starts.shape[0], dtype=np.int64)
        ends[:-1] = starts[1:]
        ends[-1] = n
        ends -= 1
        self.tags[s_sets[ends], 0] = s_lines[ends]
        return hits

    def _replay_rounds(self, s_lines: np.ndarray, s_sets: np.ndarray) -> np.ndarray:
        n = s_lines.shape[0]
        # group boundaries (sets are sorted, so groups are runs)
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(s_sets[1:], s_sets[:-1], out=new_group[1:])
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(n, dtype=np.int32), 0)
        )

        # trivial hits: same line as the previous access in the same set
        trivial = np.zeros(n, dtype=bool)
        trivial[1:] = (s_lines[1:] == s_lines[:-1]) & ~new_group[1:]

        nontrivial = ~trivial
        # trivial doubles as the result buffer: every non-trivial slot is
        # False here and is overwritten by the replay below
        hits_sorted = trivial
        # rank of each non-trivial access within its set group
        cum = np.cumsum(nontrivial, dtype=np.int32)
        before_group = np.where(group_start > 0, cum[group_start - 1], 0)
        rank = cum - before_group - 1  # valid where nontrivial

        nt_idx = np.flatnonzero(nontrivial)
        if not nt_idx.size:
            return hits_sorted
        nt_rank = rank[nt_idx]
        max_rank = int(nt_rank.max())
        rounds = max_rank + 1
        if rounds * self._n_sets <= 2 * n + 4096 and int(s_lines.min()) >= 0:
            hits_sorted[nt_idx] = self._rounds_dense(
                s_lines[nt_idx], s_sets[nt_idx], nt_rank, rounds
            )
            return hits_sorted

        # bucket accesses by round once (argsort by rank)
        round_order = _argsort_narrow(nt_rank, rounds)
        nt_sorted = nt_idx[round_order]
        rank_sorted = nt_rank[round_order]
        round_starts = np.searchsorted(rank_sorted, np.arange(rounds + 1))
        round_sets = s_sets[nt_sorted]
        round_lines = s_lines[nt_sorted]
        hits_nt = np.empty(nt_sorted.shape[0], dtype=bool)
        tags, stamps = self.tags, self.stamps
        for r in range(rounds):
            lo, hi = round_starts[r], round_starts[r + 1]
            if lo == hi:
                continue
            set_ids = round_sets[lo:hi]
            line_ids = round_lines[lo:hi]
            way_tags = tags[set_ids]
            hit_mask = way_tags == line_ids[:, None]
            hit = hit_mask.any(axis=1)
            way = np.where(
                hit, hit_mask.argmax(axis=1), stamps[set_ids].argmin(axis=1)
            )
            tags[set_ids, way] = line_ids
            self.time += 1
            stamps[set_ids, way] = self.time
            hits_nt[lo:hi] = hit
        hits_sorted[nt_sorted] = hits_nt
        return hits_sorted

    def _rounds_dense(
        self,
        nt_lines: np.ndarray,
        nt_sets: np.ndarray,
        nt_rank: np.ndarray,
        rounds: int,
    ) -> np.ndarray:
        """Round replay over the *full* state arrays, no gathers.

        Lays the non-trivial accesses out as a dense (rounds x n_sets)
        matrix (sentinel -1 for sets idle in a round, hence the
        non-negative-lines gate) and updates every set every round:
        idle sets "re-access" their own MRU line, which is a semantic
        no-op — it refreshes the MRU stamp, preserving the relative
        stamp order that LRU eviction depends on.  This trades a few
        redundant dense ops for the removal of all fancy-indexed
        gathers, which dominate when rounds are many and sets are few.
        """
        n_sets = self._n_sets
        tags, stamps = self.tags, self.stamps
        matrix = np.full((rounds, n_sets), -1, dtype=np.int64)
        matrix[nt_rank, nt_sets] = nt_lines
        hit_matrix = np.empty((rounds, n_sets), dtype=bool)
        row_idx = np.arange(n_sets)
        # preallocated scratch: the loop is dispatch-bound, so every
        # avoided temporary counts
        active = np.empty(n_sets, dtype=bool)
        hit_mask = np.empty(tags.shape, dtype=bool)
        way = np.empty(n_sets, dtype=np.intp)
        way_hit = np.empty(n_sets, dtype=np.intp)
        mru_line = tags[row_idx, stamps.argmax(axis=1)]
        # the all-hit shortcut saves an argmin over the full state, which
        # only pays for itself on large levels
        check_all_hit = tags.size >= 2048
        for r in range(rounds):
            line_row = matrix[r]
            np.not_equal(line_row, -1, out=active)
            # idle sets re-access their MRU line: mru_line doubles as
            # this round's effective line vector
            np.copyto(mru_line, line_row, where=active)
            np.equal(tags, mru_line[:, None], out=hit_mask)
            hit = hit_matrix[r]
            hit_mask.any(axis=1, out=hit)
            hit_mask.argmax(axis=1, out=way_hit)
            self.time += 1
            if check_all_hit and hit.all():
                # no evictions anywhere: tags are unchanged, only the
                # MRU stamps refresh
                stamps[row_idx, way_hit] = self.time
                continue
            stamps.argmin(axis=1, out=way)
            np.copyto(way, way_hit, where=hit)
            tags[row_idx, way] = mru_line
            stamps[row_idx, way] = self.time
        return hit_matrix[nt_rank, nt_sets]


@dataclass
class LevelStats:
    """Accumulated per-level counters.

    ``accesses``/``hits`` are level-local (an access reaches level *i*
    only if it missed all inner levels).  Per-instruction arrays are
    indexed by instruction id and sized on demand; they are views into
    geometrically-grown backing buffers, so repeated growth is amortized
    O(1) per element rather than O(n^2) re-concatenation.
    """

    name: str
    accesses: int = 0
    hits: int = 0
    instr_accesses: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    instr_hits: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    def __post_init__(self):
        self._acc_buf = self.instr_accesses
        self._hit_buf = self.instr_hits

    def _grow(self, n: int) -> None:
        if self.instr_accesses.shape[0] >= n:
            return
        cap = self._acc_buf.shape[0]
        if cap < n:
            new_cap = max(n, 2 * cap)
            acc = np.zeros(new_cap, dtype=np.int64)
            acc[:cap] = self._acc_buf
            hit = np.zeros(new_cap, dtype=np.int64)
            hit[:cap] = self._hit_buf
            self._acc_buf, self._hit_buf = acc, hit
        self.instr_accesses = self._acc_buf[:n]
        self.instr_hits = self._hit_buf[:n]

    def record(self, instr_idx: Optional[np.ndarray], hits: np.ndarray) -> None:
        self.accesses += int(hits.shape[0])
        self.hits += int(hits.sum())
        if instr_idx is not None and instr_idx.size:
            counts = np.bincount(instr_idx)
            self._grow(counts.shape[0])
            self.instr_accesses[: counts.shape[0]] += counts
            hit_counts = np.bincount(instr_idx[hits])
            self.instr_hits[: hit_counts.shape[0]] += hit_counts

    @property
    def local_hit_rate(self) -> float:
        """Hits over accesses *that reached this level*."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class SimulationResult:
    """Final counters of a hierarchy simulation."""

    hierarchy: CacheHierarchy
    levels: List[LevelStats]
    total_accesses: int

    def cumulative_hit_rates(self) -> np.ndarray:
        """Fraction of *all* references served at or before each level.

        This is the paper's hit-rate convention: Table II reports
        monotonically non-decreasing L1/L2/L3 rates for one block.
        """
        if self.total_accesses == 0:
            return np.zeros(len(self.levels))
        hits = np.array([lv.hits for lv in self.levels], dtype=np.float64)
        return np.cumsum(hits) / self.total_accesses

    def instruction_cumulative_hit_rates(self, n_instructions: int) -> np.ndarray:
        """Per-instruction cumulative hit rates, shape (n_instr, n_levels).

        One vectorized pass: the per-level hit counters are padded into
        a dense ``(n_instr, n_levels)`` matrix, cumulative-summed along
        levels, and divided by the level-0 access totals in a single
        masked divide (unseen instructions keep all-zero rows).
        """
        n_levels = len(self.levels)
        out = np.zeros((n_instructions, n_levels))
        if not self.levels or n_instructions == 0:
            return out
        total = np.zeros(n_instructions, dtype=np.int64)
        lv0 = self.levels[0]
        k = min(n_instructions, lv0.instr_accesses.shape[0])
        total[:k] = lv0.instr_accesses[:k]
        hits = np.zeros((n_instructions, n_levels))
        for j, lv in enumerate(self.levels):
            k = min(n_instructions, lv.instr_hits.shape[0])
            hits[:k, j] = lv.instr_hits[:k]
        cum = np.cumsum(hits, axis=1)
        seen = total > 0
        np.divide(
            cum,
            total[:, None].astype(np.float64),
            out=out,
            where=seen[:, None],
        )
        return out


def _nested_set_bits(levels: Sequence[CacheGeometry]) -> bool:
    """True when the sorted-stream fast path is valid for ``levels``.

    Requires a single line size and power-of-two set counts that do not
    decrease outward: level *i*'s set-index bits are then a suffix of
    level *i+1*'s, so a stream stably sorted by level *i*'s set id stays
    correctly ordered within every set of level *i+1*.
    """
    line = levels[0].line_size
    low = 0
    for g in levels:
        if g.line_size != line:
            return False
        if g.n_sets == 1:
            continue  # fully associative: order-preserving, no set bits
        if g.n_sets & (g.n_sets - 1):
            return False
        bits = g.n_sets.bit_length() - 1
        if bits < low:
            return False
        low = bits
    return True


class HierarchySimulator:
    """Simulates a full hierarchy over a chunked address stream.

    Typical use::

        sim = HierarchySimulator(hierarchy)
        for instr_idx, addrs in stream_chunks:
            sim.process(addrs, instr_idx)
        result = sim.result()
    """

    def __init__(self, hierarchy: CacheHierarchy):
        self.hierarchy = hierarchy
        self._states = [_LevelState(g) for g in hierarchy.levels]
        self._stats = [LevelStats(g.name) for g in hierarchy.levels]
        self._total = 0
        self._nested = _nested_set_bits(hierarchy.levels)

    def reset(self) -> None:
        """Clear all cache state and counters."""
        for st in self._states:
            st.reset()
        self.clear_counters()

    def clear_counters(self) -> None:
        """Zero the statistics but keep cache contents warm.

        Used by warm-up passes (MultiMAPS probes, signature collection):
        simulate the stream once to reach steady state, clear, then
        measure a second pass.
        """
        self._stats = [LevelStats(g.name) for g in self.hierarchy.levels]
        self._total = 0

    def process(
        self, addresses: np.ndarray, instr_idx: Optional[np.ndarray] = None
    ) -> None:
        """Push one in-order chunk of byte addresses through the hierarchy."""
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if instr_idx is not None:
            instr_idx = np.ascontiguousarray(instr_idx)
            if instr_idx.shape != addresses.shape:
                raise ValueError("instr_idx shape must match addresses")
        self._total += int(addresses.shape[0])
        REGISTRY.inc("cachesim.chunks")
        REGISTRY.inc("cachesim.accesses", int(addresses.shape[0]))
        if self._nested:
            self._process_nested(addresses, instr_idx)
            return
        for state, stats in zip(self._states, self._stats):
            if addresses.shape[0] == 0:
                break
            hits = state.access(addresses)
            stats.record(instr_idx, hits)
            miss = ~hits
            addresses = addresses[miss]
            if instr_idx is not None:
                instr_idx = instr_idx[miss]

    def _process_nested(
        self, addresses: np.ndarray, instr_idx: Optional[np.ndarray]
    ) -> None:
        """Sorted-stream walk down a nested-set-bits hierarchy.

        The miss stream is carried in set-sorted order; each level only
        re-sorts on the set-index bits the previous level did not order,
        and the per-instruction counters (plain bincounts) never need
        the program order back.
        """
        if addresses.shape[0] == 0:
            return
        lines = addresses >> self._states[0]._line_shift
        instr = instr_idx
        low_bits = 0
        for state, stats in zip(self._states, self._stats):
            if lines.shape[0] == 0:
                break
            if state._n_sets == 1:
                hits = state._replay_fully_assoc(lines)
            else:
                sets = lines & state._set_mask
                order = _argsort_narrow(
                    sets >> low_bits, 1 << (state._set_bits - low_bits)
                )
                lines = lines[order]
                if instr is not None:
                    instr = instr[order]
                hits = state._replay_sorted(lines, sets[order])
                low_bits = state._set_bits
            stats.record(instr, hits)
            miss = ~hits
            lines = lines[miss]
            if instr is not None:
                instr = instr[miss]

    def result(self) -> SimulationResult:
        """Snapshot the accumulated statistics."""
        return SimulationResult(
            hierarchy=self.hierarchy,
            levels=list(self._stats),
            total_accesses=self._total,
        )
