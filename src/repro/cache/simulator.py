"""Vectorized exact-LRU multi-level cache simulation.

The engine processes address chunks (tens of thousands of accesses) with
numpy-level parallelism while preserving exact LRU semantics:

1.  Accesses are grouped by cache set (stable sort), which preserves
    per-set access order — the only order LRU cares about.
2.  Back-to-back accesses to the same line within a set are *trivial
    hits* and are collapsed (they cannot change replacement state except
    recency, which the collapse preserves).
3.  The remaining accesses are replayed in *rounds*: round ``r`` carries
    the ``r``-th surviving access of every set.  Within a round all
    accesses touch distinct sets, so tag compare / LRU update is one
    vectorized gather-scatter over the state arrays.

The number of Python-level iterations is therefore the maximum per-set
access count in the chunk, typically two to three orders of magnitude
smaller than the chunk itself.  :mod:`repro.cache.reference` implements
the same semantics one access at a time; the test suite checks the two
agree bit-for-bit on every pattern class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy

_EMPTY_TAG = np.int64(-1)


class _LevelState:
    """Mutable tag/recency state for one cache level."""

    __slots__ = ("geometry", "tags", "stamps", "time", "_line_shift")

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        n_sets, assoc = geometry.n_sets, geometry.associativity
        self.tags = np.full((n_sets, assoc), _EMPTY_TAG, dtype=np.int64)
        self.stamps = np.zeros((n_sets, assoc), dtype=np.int64)
        self.time = 0
        self._line_shift = int(geometry.line_size).bit_length() - 1

    def reset(self) -> None:
        self.tags.fill(_EMPTY_TAG)
        self.stamps.fill(0)
        self.time = 0

    def access(self, addresses: np.ndarray) -> np.ndarray:
        """Simulate ``addresses`` in order; return per-access hit mask."""
        n = addresses.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        lines = addresses >> self._line_shift
        sets = lines % self.geometry.n_sets

        order = np.argsort(sets, kind="stable")
        s_sets = sets[order]
        s_lines = lines[order]

        # group boundaries (sets are sorted, so groups are runs)
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(s_sets[1:], s_sets[:-1], out=new_group[1:])
        group_start = np.maximum.accumulate(np.where(new_group, np.arange(n), 0))

        # trivial hits: same line as the previous access in the same set
        trivial = np.zeros(n, dtype=bool)
        trivial[1:] = (s_lines[1:] == s_lines[:-1]) & ~new_group[1:]

        hits_sorted = trivial.copy()

        nontrivial = ~trivial
        # rank of each non-trivial access within its set group
        cum = np.cumsum(nontrivial)
        before_group = np.where(group_start > 0, cum[group_start - 1], 0)
        rank = cum - before_group - 1  # valid where nontrivial

        nt_idx = np.flatnonzero(nontrivial)
        if nt_idx.size:
            nt_rank = rank[nt_idx]
            max_rank = int(nt_rank.max())
            # bucket accesses by round once (argsort by rank)
            round_order = np.argsort(nt_rank, kind="stable")
            nt_sorted = nt_idx[round_order]
            rank_sorted = nt_rank[round_order]
            round_starts = np.searchsorted(rank_sorted, np.arange(max_rank + 2))
            tags, stamps = self.tags, self.stamps
            for r in range(max_rank + 1):
                lo, hi = round_starts[r], round_starts[r + 1]
                if lo == hi:
                    continue
                idx = nt_sorted[lo:hi]
                set_ids = s_sets[idx]
                line_ids = s_lines[idx]
                way_tags = tags[set_ids]
                hit_mask = way_tags == line_ids[:, None]
                hit = hit_mask.any(axis=1)
                way = np.where(
                    hit, hit_mask.argmax(axis=1), stamps[set_ids].argmin(axis=1)
                )
                tags[set_ids, way] = line_ids
                self.time += 1
                stamps[set_ids, way] = self.time
                hits_sorted[idx] = hit

        hits = np.empty(n, dtype=bool)
        hits[order] = hits_sorted
        return hits


@dataclass
class LevelStats:
    """Accumulated per-level counters.

    ``accesses``/``hits`` are level-local (an access reaches level *i*
    only if it missed all inner levels).  Per-instruction arrays are
    indexed by instruction id and sized on demand.
    """

    name: str
    accesses: int = 0
    hits: int = 0
    instr_accesses: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    instr_hits: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    def _grow(self, n: int) -> None:
        if self.instr_accesses.shape[0] < n:
            pad = n - self.instr_accesses.shape[0]
            self.instr_accesses = np.concatenate(
                [self.instr_accesses, np.zeros(pad, dtype=np.int64)]
            )
            self.instr_hits = np.concatenate(
                [self.instr_hits, np.zeros(pad, dtype=np.int64)]
            )

    def record(self, instr_idx: Optional[np.ndarray], hits: np.ndarray) -> None:
        self.accesses += int(hits.shape[0])
        self.hits += int(hits.sum())
        if instr_idx is not None and instr_idx.size:
            n = int(instr_idx.max()) + 1
            self._grow(n)
            self.instr_accesses[:n] += np.bincount(instr_idx, minlength=n)
            self.instr_hits[:n] += np.bincount(
                instr_idx[hits], minlength=n
            )

    @property
    def local_hit_rate(self) -> float:
        """Hits over accesses *that reached this level*."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class SimulationResult:
    """Final counters of a hierarchy simulation."""

    hierarchy: CacheHierarchy
    levels: List[LevelStats]
    total_accesses: int

    def cumulative_hit_rates(self) -> np.ndarray:
        """Fraction of *all* references served at or before each level.

        This is the paper's hit-rate convention: Table II reports
        monotonically non-decreasing L1/L2/L3 rates for one block.
        """
        if self.total_accesses == 0:
            return np.zeros(len(self.levels))
        hits = np.array([lv.hits for lv in self.levels], dtype=np.float64)
        return np.cumsum(hits) / self.total_accesses

    def instruction_cumulative_hit_rates(self, n_instructions: int) -> np.ndarray:
        """Per-instruction cumulative hit rates, shape (n_instr, n_levels)."""
        out = np.zeros((n_instructions, len(self.levels)))
        total = np.zeros(n_instructions, dtype=np.int64)
        if self.levels:
            lv0 = self.levels[0]
            k = min(n_instructions, lv0.instr_accesses.shape[0])
            total[:k] = lv0.instr_accesses[:k]
        cum = np.zeros(n_instructions, dtype=np.float64)
        for j, lv in enumerate(self.levels):
            k = min(n_instructions, lv.instr_hits.shape[0])
            cum[:k] += lv.instr_hits[:k]
            with np.errstate(invalid="ignore", divide="ignore"):
                out[:, j] = np.where(total > 0, cum / np.maximum(total, 1), 0.0)
        return out


class HierarchySimulator:
    """Simulates a full hierarchy over a chunked address stream.

    Typical use::

        sim = HierarchySimulator(hierarchy)
        for instr_idx, addrs in stream_chunks:
            sim.process(addrs, instr_idx)
        result = sim.result()
    """

    def __init__(self, hierarchy: CacheHierarchy):
        self.hierarchy = hierarchy
        self._states = [_LevelState(g) for g in hierarchy.levels]
        self._stats = [LevelStats(g.name) for g in hierarchy.levels]
        self._total = 0

    def reset(self) -> None:
        """Clear all cache state and counters."""
        for st in self._states:
            st.reset()
        self.clear_counters()

    def clear_counters(self) -> None:
        """Zero the statistics but keep cache contents warm.

        Used by warm-up passes (MultiMAPS probes, signature collection):
        simulate the stream once to reach steady state, clear, then
        measure a second pass.
        """
        self._stats = [LevelStats(g.name) for g in self.hierarchy.levels]
        self._total = 0

    def process(
        self, addresses: np.ndarray, instr_idx: Optional[np.ndarray] = None
    ) -> None:
        """Push one in-order chunk of byte addresses through the hierarchy."""
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if instr_idx is not None:
            instr_idx = np.ascontiguousarray(instr_idx)
            if instr_idx.shape != addresses.shape:
                raise ValueError("instr_idx shape must match addresses")
        self._total += int(addresses.shape[0])
        for state, stats in zip(self._states, self._stats):
            if addresses.shape[0] == 0:
                break
            hits = state.access(addresses)
            stats.record(instr_idx, hits)
            miss = ~hits
            addresses = addresses[miss]
            if instr_idx is not None:
                instr_idx = instr_idx[miss]

    def result(self) -> SimulationResult:
        """Snapshot the accumulated statistics."""
        return SimulationResult(
            hierarchy=self.hierarchy,
            levels=list(self._stats),
            total_accesses=self._total,
        )
