"""Predefined cache hierarchies used throughout the reproduction.

These correspond to the systems the paper mentions:

- ``opteron_2level`` — the two-cache-level Opteron whose MultiMAPS
  surface is Fig. 1.
- ``cray_xt5`` — the base/collection system (Kraken), a 3-level Opteron
  ("Istanbul"-like) hierarchy.
- ``blue_waters_p1`` — the Phase-I Blue Waters-like target system of
  Table I (POWER7-like geometry).
- ``system_a`` / ``system_b`` — Table III's what-if pair: identical L2/L3
  but 12KB vs 56KB L1.

Exact vendor geometries are irrelevant to the methodology (any concrete
hierarchy exercises the same code); what matters is that system_a/b
differ *only* in L1 size, and that blue_waters_p1 is the common target
for Table I and II.
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.util.units import KB, MB


def opteron_2level() -> CacheHierarchy:
    """Two-level Opteron-like hierarchy (Fig. 1's MultiMAPS subject)."""
    return CacheHierarchy(
        [
            CacheGeometry(64 * KB, line_size=64, associativity=2, name="L1"),
            CacheGeometry(1 * MB, line_size=64, associativity=16, name="L2"),
        ],
        name="Opteron-2L",
    )


def cray_xt5() -> CacheHierarchy:
    """Kraken-like Cray XT5 node hierarchy (base/collection system)."""
    return CacheHierarchy(
        [
            CacheGeometry(64 * KB, line_size=64, associativity=2, name="L1"),
            CacheGeometry(512 * KB, line_size=64, associativity=16, name="L2"),
            CacheGeometry(2 * MB, line_size=64, associativity=16, name="L3"),
        ],
        name="CrayXT5",
    )


def blue_waters_p1() -> CacheHierarchy:
    """Phase-I Blue Waters-like target hierarchy (Tables I and II)."""
    return CacheHierarchy(
        [
            CacheGeometry(32 * KB, line_size=64, associativity=8, name="L1"),
            CacheGeometry(256 * KB, line_size=64, associativity=8, name="L2"),
            CacheGeometry(4 * MB, line_size=64, associativity=16, name="L3"),
        ],
        name="BlueWatersP1",
    )


def system_a() -> CacheHierarchy:
    """Table III "System A": 12KB L1, shared L2/L3 with system B."""
    return CacheHierarchy(
        [
            CacheGeometry(12 * KB, line_size=64, associativity=3, name="L1"),
            CacheGeometry(256 * KB, line_size=64, associativity=8, name="L2"),
            CacheGeometry(4 * MB, line_size=64, associativity=16, name="L3"),
        ],
        name="SystemA-12KB-L1",
    )


def system_b() -> CacheHierarchy:
    """Table III "System B": 56KB L1, otherwise identical to system A."""
    return CacheHierarchy(
        [
            CacheGeometry(56 * KB, line_size=64, associativity=7, name="L1"),
            CacheGeometry(256 * KB, line_size=64, associativity=8, name="L2"),
            CacheGeometry(4 * MB, line_size=64, associativity=16, name="L3"),
        ],
        name="SystemB-56KB-L1",
    )


NAMED_HIERARCHIES = {
    "opteron_2level": opteron_2level,
    "cray_xt5": cray_xt5,
    "blue_waters_p1": blue_waters_p1,
    "system_a": system_a,
    "system_b": system_b,
}


def get_hierarchy(name: str) -> CacheHierarchy:
    """Look up a predefined hierarchy by name."""
    try:
        return NAMED_HIERARCHIES[name]()
    except KeyError:
        known = ", ".join(sorted(NAMED_HIERARCHIES))
        raise KeyError(f"unknown hierarchy {name!r}; known: {known}") from None
