"""Multi-level set-associative cache simulation.

This is the substrate behind the paper's on-the-fly application-signature
collection (Fig. 2): every memory address an instrumented program emits is
pushed through a simulator configured like the *target* system's memory
hierarchy, producing per-basic-block cache hit rates for that target —
without ever running on the target.

Three implementations are provided, two of them behind the
:class:`repro.cache.engine.CacheEngine` interface signature collection
dispatches on (``--cache-engine``):

- :class:`repro.cache.simulator.HierarchySimulator` — the ``exact``
  engine's replay core.  Exact LRU semantics, vectorized over cache
  sets per the hpc-parallel guides (the Python-level loop is over
  *rounds* of set-disjoint accesses, not over addresses).
- :mod:`repro.cache.reuse` — the ``reuse`` engine's analytical core:
  one-pass reuse-distance profiles evaluated per geometry in closed
  form, no replay (DESIGN.md §7.8).
- :mod:`repro.cache.reference` — a straightforward scalar simulator used
  to cross-validate the vectorized engine in tests.
"""

from repro.cache.engine import (
    ENGINE_NAMES,
    CacheEngine,
    ExactEngine,
    ReuseEngine,
    get_engine,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.reference import ReferenceCacheLevel, simulate_reference
from repro.cache.reuse import (
    ProfileCache,
    ReuseProfile,
    configure_profile_cache,
    cross_block_lines,
    profile_cache,
)
from repro.cache.simulator import HierarchySimulator, LevelStats, SimulationResult

__all__ = [
    "CacheGeometry",
    "CacheHierarchy",
    "CacheEngine",
    "ENGINE_NAMES",
    "ExactEngine",
    "ReuseEngine",
    "get_engine",
    "HierarchySimulator",
    "LevelStats",
    "SimulationResult",
    "ProfileCache",
    "ReuseProfile",
    "configure_profile_cache",
    "cross_block_lines",
    "profile_cache",
    "ReferenceCacheLevel",
    "simulate_reference",
]
