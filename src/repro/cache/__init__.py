"""Multi-level set-associative cache simulation.

This is the substrate behind the paper's on-the-fly application-signature
collection (Fig. 2): every memory address an instrumented program emits is
pushed through a simulator configured like the *target* system's memory
hierarchy, producing per-basic-block cache hit rates for that target —
without ever running on the target.

Two implementations are provided:

- :class:`repro.cache.simulator.HierarchySimulator` — the production
  engine.  Exact LRU semantics, vectorized over cache sets per the
  hpc-parallel guides (the Python-level loop is over *rounds* of
  set-disjoint accesses, not over addresses).
- :mod:`repro.cache.reference` — a straightforward scalar simulator used
  to cross-validate the vectorized engine in tests.
"""

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.simulator import HierarchySimulator, LevelStats, SimulationResult
from repro.cache.reference import ReferenceCacheLevel, simulate_reference

__all__ = [
    "CacheGeometry",
    "CacheHierarchy",
    "HierarchySimulator",
    "LevelStats",
    "SimulationResult",
    "ReferenceCacheLevel",
    "simulate_reference",
]
