"""Cache hierarchy configuration: an ordered stack of cache levels.

A hierarchy is the memory-system half of a *target system* description.
The signature collector simulates the hierarchy of the target system
while running on the base system — the paper's cross-architectural
prediction mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.util.validation import ValidationError


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered, inclusive-miss-stream cache hierarchy.

    Levels are ordered from closest to the core (L1) outward.  Accesses
    that miss level *i* are forwarded (in order) to level *i+1*; misses
    in the last level go to main memory.

    Parameters
    ----------
    levels:
        Per-level geometries, L1 first.
    name:
        Hierarchy label, usually the system name.
    """

    levels: Tuple[CacheGeometry, ...]
    name: str = "hierarchy"

    def __init__(self, levels: Sequence[CacheGeometry], name: str = "hierarchy"):
        levels = tuple(levels)
        if not levels:
            raise ValidationError("hierarchy must have at least one level")
        for inner, outer in zip(levels, levels[1:]):
            if outer.size_bytes < inner.size_bytes:
                raise ValidationError(
                    f"{name}: level {outer.name} ({outer.size_bytes}B) smaller "
                    f"than inner level {inner.name} ({inner.size_bytes}B)"
                )
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "name", name)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def level_names(self) -> List[str]:
        return [g.name for g in self.levels]

    def with_level(self, index: int, geometry: CacheGeometry) -> "CacheHierarchy":
        """Return a copy with one level replaced (what-if studies, Table III)."""
        if not 0 <= index < len(self.levels):
            raise IndexError(f"level index {index} out of range")
        levels = list(self.levels)
        levels[index] = geometry
        return CacheHierarchy(levels, name=f"{self.name}*")

    def describe(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend("  " + g.describe() for g in self.levels)
        return "\n".join(lines)
