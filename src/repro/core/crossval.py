"""Leave-one-out confidence estimation for trace extrapolation.

The paper picks fits by training SSE; with three points every 2-parameter
form can fit closely, so training error says little about extrapolation
error.  A cheap, assumption-free confidence signal is leave-one-out on
the *largest* training count: refit each element on the smaller counts
and score the held-out prediction.  Elements that survive this (the
constant hit rates, the log-growing reduction counts) can be trusted at
the target; elements that fail are flagged for the analyst — typically
the working sets crossing a cache level right at the training boundary.

This is an extension beyond the paper (its natural "how much should I
trust this extrapolation?" companion).  It is wired into the pipeline
through the guard subsystem: :func:`repro.guard.gates.crossval_gate`
runs it whenever guarded extrapolation has >= 3 training traces, the
resulting trust fraction flows into the degradation report, the run
manifest, and the ``.quality.json`` sidecar written next to each
synthesized trace, and ``repro predict --trust-threshold`` turns it
into an acceptance floor.  The scores are advisory — they flag
elements, never alter extrapolated values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.canonical import CanonicalForm, PAPER_FORMS, fit_all
from repro.core.errors import abs_rel_error
from repro.core.fitting import ElementFit
from repro.trace.tracefile import TraceFile


@dataclass
class ElementConfidence:
    """Held-out error of one element's canonical fit."""

    block_id: int
    instr_id: int
    feature: str
    held_out_value: float
    predicted_value: float

    @property
    def held_out_error(self) -> float:
        return abs_rel_error(self.held_out_value, self.predicted_value)


@dataclass
class CrossValidationReport:
    """Leave-last-out scores for every element of a trace series."""

    core_counts: List[int]
    elements: List[ElementConfidence] = field(default_factory=list)

    def errors(self) -> np.ndarray:
        return np.array(
            [e.held_out_error for e in self.elements if np.isfinite(e.held_out_error)]
        )

    def median_error(self) -> float:
        errs = self.errors()
        return float(np.median(errs)) if errs.size else 0.0

    def flagged(self, threshold: float = 0.2) -> List[ElementConfidence]:
        """Elements whose held-out error exceeds ``threshold``."""
        return sorted(
            (e for e in self.elements if e.held_out_error > threshold),
            key=lambda e: -e.held_out_error,
        )

    def trust_fraction(self, threshold: float = 0.2) -> float:
        """Fraction of elements within the threshold."""
        if not self.elements:
            return 1.0
        ok = sum(1 for e in self.elements if e.held_out_error <= threshold)
        return ok / len(self.elements)


def cross_validate_traces(
    traces: Sequence[TraceFile],
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
) -> CrossValidationReport:
    """Score every element by leave-last-out refitting.

    Requires at least three traces (two remain for refitting).  The
    largest core count is held out because extrapolation always moves in
    that direction.
    """
    if len(traces) < 3:
        raise ValueError(
            f"cross-validation needs >= 3 training traces, got {len(traces)}"
        )
    traces = sorted(traces, key=lambda t: t.n_ranks)
    held_out = traces[-1]
    kept = traces[:-1]
    x = np.array([t.n_ranks for t in kept], dtype=np.float64)
    report = CrossValidationReport(core_counts=[t.n_ranks for t in traces])
    schema = held_out.schema
    for bid in sorted(held_out.blocks):
        for k in range(held_out.blocks[bid].n_instructions):
            truth_vec = held_out.blocks[bid].instructions[k].features
            series = np.stack(
                [t.blocks[bid].instructions[k].features for t in kept]
            )
            for j, feature in enumerate(schema.fields):
                # mirror the production extrapolation path: bounds-aware
                # selection among all candidate fits, then clamping
                element = ElementFit(
                    block_id=bid,
                    instr_id=k,
                    feature=feature,
                    candidates=fit_all(x, series[:, j], forms),
                    train_x=x,
                    train_y=series[:, j].copy(),
                )
                predicted = element.predict(
                    float(held_out.n_ranks), schema.bounds(feature)
                )
                report.elements.append(
                    ElementConfidence(
                        block_id=bid,
                        instr_id=k,
                        feature=feature,
                        held_out_value=float(truth_vec[j]),
                        predicted_value=predicted,
                    )
                )
    return report
