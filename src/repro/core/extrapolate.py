"""Trace extrapolation (§IV): synthesize the large-core-count trace.

Takes trace files of the slowest task at a series of small core counts
(the paper uses three: "using more than three core counts could improve
the quality of the fit but ... three generally provided adequate
accuracy"), fits every feature element, and evaluates at the target core
count, producing a synthetic :class:`~repro.trace.tracefile.TraceFile`
that downstream prediction consumes exactly like a collected one.

Predicted values are clamped to each feature's physical bounds (hit
rates to [0, 1], counts to >= 0); the hit-rate block is additionally
re-monotonized (cumulative rates cannot decrease outward).

Rate elements also get a *trust region*: the extrapolated change beyond
the largest training count is capped at ``rate_trust_factor`` times the
total change observed across training.  Hit-rate curves saturate for
structural reasons (inter-block cache competition) that no canonical
form can see in three points; an exponential fit through a gently
accelerating rate otherwise extrapolates straight to 100%.  The cap is
conservative in exactly the way the fits are optimistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.canonical import CanonicalForm, PAPER_FORMS
from repro.core.fitting import FitReport, fit_feature_series
from repro.trace.records import BasicBlockRecord, InstructionRecord
from repro.trace.tracefile import TraceFile


@dataclass
class ExtrapolationResult:
    """The synthesized trace plus the fit diagnostics behind it."""

    trace: TraceFile
    report: FitReport
    target_n_ranks: int


def _check_consistent(traces: Sequence[TraceFile]) -> None:
    first = traces[0]
    for other in traces[1:]:
        if other.schema.fields != first.schema.fields:
            raise ValueError("traces have differing schemas")
        if other.app != first.app:
            raise ValueError(
                f"traces from different apps: {first.app!r} vs {other.app!r}"
            )
        if other.target != first.target:
            raise ValueError(
                f"traces against different targets: {first.target!r} vs "
                f"{other.target!r}"
            )
        if sorted(other.blocks) != sorted(first.blocks):
            raise ValueError("traces have differing basic-block sets")
        for bid in first.blocks:
            if other.blocks[bid].n_instructions != first.blocks[bid].n_instructions:
                raise ValueError(
                    f"block {bid} has differing instruction counts across traces"
                )


def extrapolate_trace(
    traces: Sequence[TraceFile],
    target_n_ranks: int,
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
    rank: int = -1,
    rate_trust_factor: float = 2.0,
) -> ExtrapolationResult:
    """Extrapolate a series of small-core-count traces to a large count.

    Parameters
    ----------
    traces:
        Slowest-task trace files at ascending core counts (>= 2; the
        paper uses 3).
    target_n_ranks:
        Core count to synthesize.
    forms:
        Canonical forms to select among (paper set by default; pass
        :data:`~repro.core.canonical.EXTENDED_FORMS` for the §VI
        extension).
    rank:
        Rank id recorded in the synthetic trace (cosmetic; -1 marks
        "synthetic slowest task").
    rate_trust_factor:
        Trust-region width for rate elements, in units of the training
        range (see module docstring).  ``inf`` disables the cap.
    """
    if len(traces) < 2:
        raise ValueError(
            f"need at least 2 training traces, got {len(traces)} "
            "(the paper uses 3)"
        )
    traces = sorted(traces, key=lambda t: t.n_ranks)
    counts = [t.n_ranks for t in traces]
    if len(set(counts)) != len(counts):
        raise ValueError(f"duplicate training core counts: {counts}")
    if target_n_ranks <= 0:
        raise ValueError(f"target core count must be positive, got {target_n_ranks}")
    _check_consistent(traces)
    schema = traces[0].schema

    # assemble per-(block, instr) series across core counts
    series: Dict[Tuple[int, int], np.ndarray] = {}
    for bid in sorted(traces[0].blocks):
        n_instr = traces[0].blocks[bid].n_instructions
        for k in range(n_instr):
            rows = [t.blocks[bid].instructions[k].features for t in traces]
            series[(bid, k)] = np.stack(rows)

    report = fit_feature_series(schema, counts, series, forms)

    out = TraceFile(
        app=traces[0].app,
        rank=rank,
        n_ranks=target_n_ranks,
        target=traces[0].target,
        schema=schema,
        extrapolated=True,
    )
    hr_slice = schema.hit_rate_slice
    for bid in sorted(traces[0].blocks):
        template = traces[0].blocks[bid]
        block = BasicBlockRecord(block_id=bid, location=template.location)
        for k, template_ins in enumerate(template.instructions):
            vec = schema.empty_vector()
            for j, feature in enumerate(schema.fields):
                fit = report.fit_for(bid, k, feature)
                value = fit.predict(target_n_ranks, schema.bounds(feature))
                if schema.is_rate_field(feature) and np.isfinite(
                    rate_trust_factor
                ):
                    last = float(fit.train_y[-1])
                    spread = float(np.ptp(fit.train_y))
                    value = float(
                        np.clip(
                            value,
                            last - rate_trust_factor * spread,
                            last + rate_trust_factor * spread,
                        )
                    )
                vec[j] = value
            # cumulative hit rates must be non-decreasing outward
            vec[hr_slice] = np.maximum.accumulate(vec[hr_slice])
            block.instructions.append(
                InstructionRecord(
                    instr_id=template_ins.instr_id,
                    kind=template_ins.kind,
                    features=vec,
                )
            )
        out.add_block(block)
    return ExtrapolationResult(
        trace=out, report=report, target_n_ranks=target_n_ranks
    )
