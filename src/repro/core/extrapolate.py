"""Trace extrapolation (§IV): synthesize the large-core-count trace.

Takes trace files of the slowest task at a series of small core counts
(the paper uses three: "using more than three core counts could improve
the quality of the fit but ... three generally provided adequate
accuracy"), fits every feature element, and evaluates at the target core
count, producing a synthetic :class:`~repro.trace.tracefile.TraceFile`
that downstream prediction consumes exactly like a collected one.

Predicted values are clamped to each feature's physical bounds (hit
rates to [0, 1], counts to >= 0); the hit-rate block is additionally
re-monotonized (cumulative rates cannot decrease outward) and re-clamped
— every post-pass that can move a value re-checks the bounds, so a
malformed training series can never push a synthesized rate outside
[0, 1].

Rate elements also get a *trust region*: the extrapolated change beyond
the largest training count is capped at ``rate_trust_factor`` times the
total change observed across training.  Hit-rate curves saturate for
structural reasons (inter-block cache competition) that no canonical
form can see in three points; an exponential fit through a gently
accelerating rate otherwise extrapolates straight to 100%.  The cap is
conservative in exactly the way the fits are optimistic.

Fitting and synthesis run on the batched engine by default (all
elements as whole-trace array passes; see ``repro.core.batchfit``);
``engine="reference"`` selects the per-element scalar path the batched
engine is property-tested against.  :func:`extrapolate_trace_many`
exposes the multi-target sweep: one fit, many cheap target evaluations
— the path the Tables II/III what-if benches ride.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.canonical import CanonicalForm, PAPER_FORMS
from repro.core.fitting import (
    BatchedFitReport,
    FitReport,
    SweepPrediction,
    fit_feature_series,
)
from repro.obs.trace import span
from repro.trace.records import BasicBlockRecord, InstructionRecord
from repro.trace.tracefile import TraceFile
from repro.util.errors import FitError


@dataclass
class ExtrapolationResult:
    """The synthesized trace plus the fit diagnostics behind it."""

    trace: TraceFile
    report: FitReport
    target_n_ranks: int


@dataclass
class ExtrapolationSweep:
    """Synthesized traces for a whole sweep of targets, from one fit."""

    results: List[ExtrapolationResult]
    report: FitReport
    targets: List[int]

    def result_for(self, target: int) -> ExtrapolationResult:
        for res in self.results:
            if res.target_n_ranks == target:
                return res
        raise KeyError(f"target {target} not in sweep targets {self.targets}")

    def trace_for(self, target: int) -> TraceFile:
        return self.result_for(target).trace


def _check_consistent(traces: Sequence[TraceFile]) -> None:
    first = traces[0]
    for other in traces[1:]:
        if other.schema.fields != first.schema.fields:
            raise FitError("traces have differing schemas", stage="fit")
        if other.app != first.app:
            raise FitError(
                f"traces from different apps: {first.app!r} vs {other.app!r}",
                stage="fit",
            )
        if other.target != first.target:
            raise FitError(
                f"traces against different targets: {first.target!r} vs "
                f"{other.target!r}",
                stage="fit",
            )
        if sorted(other.blocks) != sorted(first.blocks):
            raise FitError("traces have differing basic-block sets", stage="fit")
        for bid in first.blocks:
            if other.blocks[bid].n_instructions != first.blocks[bid].n_instructions:
                raise FitError(
                    f"block {bid} has differing instruction counts across traces",
                    stage="fit",
                )


def _build_trace(
    template: TraceFile,
    target_n_ranks: int,
    rank: int,
    vectors: Dict[Tuple[int, int], np.ndarray],
) -> TraceFile:
    """Assemble a synthetic trace from per-(block, instr) feature rows."""
    out = TraceFile(
        app=template.app,
        rank=rank,
        n_ranks=target_n_ranks,
        target=template.target,
        schema=template.schema,
        extrapolated=True,
    )
    for bid in sorted(template.blocks):
        src = template.blocks[bid]
        block = BasicBlockRecord(block_id=bid, location=src.location)
        for k, template_ins in enumerate(src.instructions):
            block.instructions.append(
                InstructionRecord(
                    instr_id=template_ins.instr_id,
                    kind=template_ins.kind,
                    features=vectors[(bid, k)],
                )
            )
        out.add_block(block)
    return out


def synthesize_from_prediction(
    template: TraceFile,
    prediction: "SweepPrediction",
    target: int,
    *,
    rank: int = -1,
) -> TraceFile:
    """Assemble the synthetic trace of one target from a sweep prediction.

    The trace-building half of the batched extrapolation path on its
    own: given the ``predict_many`` output of an already-fitted model
    and its synthesis template, produce the same
    :class:`~repro.trace.tracefile.TraceFile` that
    :func:`extrapolate_trace_many` would have built for ``target`` —
    the path serving-time runtime queries take, where the fit is
    answered from the model registry instead of recomputed.
    """
    t = prediction.targets.index(target)
    vectors = {
        pair: prediction.values[t, p].copy()
        for p, pair in enumerate(prediction.pair_keys)
    }
    return _build_trace(template, target, rank, vectors)


def synthesize_element_vector(
    fits: Sequence,
    schema,
    target_n_ranks: int,
    rate_trust_factor: float,
) -> np.ndarray:
    """Reference synthesis of one instruction's feature vector.

    ``fits`` is the per-feature list of
    :class:`~repro.core.fitting.ElementFit` objects for one
    ``(block, instr)`` pair, in schema field order.  Applies the full
    scalar pipeline — physicality-aware selection, bounds clamping, the
    rate trust region (re-clamped), hit-rate re-monotonization — and is
    shared between the reference engine and the guard subsystem's
    cross-engine spot check (which refits a keyed-RNG sample of pairs
    with the reference engine and compares against the batched output).
    """
    vec = schema.empty_vector()
    for j, feature in enumerate(schema.fields):
        fit = fits[j]
        bounds = schema.bounds(feature)
        value = fit.predict(target_n_ranks, bounds)
        if schema.is_rate_field(feature) and np.isfinite(rate_trust_factor):
            last = float(fit.train_y[-1])
            spread = float(np.ptp(fit.train_y))
            value = float(
                np.clip(
                    value,
                    last - rate_trust_factor * spread,
                    last + rate_trust_factor * spread,
                )
            )
            # the trust cap can re-introduce out-of-range values when
            # the training series itself strays out of bounds —
            # physical bounds always win
            value = float(np.clip(value, *bounds))
        vec[j] = value
    # cumulative hit rates must be non-decreasing outward
    hr_slice = schema.hit_rate_slice
    vec[hr_slice] = np.clip(np.maximum.accumulate(vec[hr_slice]), 0.0, 1.0)
    return vec


def _synthesize_reference(
    report: FitReport,
    template: TraceFile,
    target_n_ranks: int,
    rate_trust_factor: float,
) -> Dict[Tuple[int, int], np.ndarray]:
    """Per-element scalar synthesis (the reference the batched engine
    must agree with): select, clamp, trust-region cap, re-clamp,
    monotonize, re-clamp."""
    schema = template.schema
    vectors: Dict[Tuple[int, int], np.ndarray] = {}
    for bid in sorted(template.blocks):
        for k in range(template.blocks[bid].n_instructions):
            fits = [
                report.fit_for(bid, k, feature) for feature in schema.fields
            ]
            vectors[(bid, k)] = synthesize_element_vector(
                fits, schema, target_n_ranks, rate_trust_factor
            )
    return vectors


def fit_traces(
    traces: Sequence[TraceFile],
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
    engine: str = "batched",
) -> Tuple[FitReport, TraceFile]:
    """Validate a training series and fit every feature element once.

    The fit half of :func:`extrapolate_trace_many`, factored out so the
    serving model registry (:mod:`repro.serve.registry`) trains through
    the identical path the sweep API uses: sort by core count, reject
    duplicates and inconsistent schemas/blocks, assemble the per-(block,
    instr) series matrices, and fit.  Returns the report plus the
    synthesis template (the smallest training trace) — everything needed
    to answer ``predict_many`` queries later without re-fitting.
    """
    if len(traces) < 2:
        raise FitError(
            f"need at least 2 training traces, got {len(traces)} "
            "(the paper uses 3)",
            stage="fit",
        )
    traces = sorted(traces, key=lambda t: t.n_ranks)
    counts = [t.n_ranks for t in traces]
    if len(set(counts)) != len(counts):
        raise FitError(f"duplicate training core counts: {counts}", stage="fit")
    _check_consistent(traces)
    schema = traces[0].schema
    template = traces[0]

    # assemble per-(block, instr) series across core counts
    series: Dict[Tuple[int, int], np.ndarray] = {}
    for bid in sorted(template.blocks):
        n_instr = template.blocks[bid].n_instructions
        for k in range(n_instr):
            rows = [t.blocks[bid].instructions[k].features for t in traces]
            series[(bid, k)] = np.stack(rows)

    report = fit_feature_series(schema, counts, series, forms, engine=engine)
    return report, template


def extrapolate_trace_many(
    traces: Sequence[TraceFile],
    targets: Sequence[int],
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
    rank: int = -1,
    rate_trust_factor: float = 2.0,
    engine: str = "batched",
) -> ExtrapolationSweep:
    """Extrapolate one training series to *many* target core counts.

    Fits every feature element once, then evaluates the fitted models at
    every target — the multi-target sweep behind the Tables II/III
    what-if benches, where re-fitting per target would dominate.  With
    the default batched engine the whole sweep is a handful of array
    passes; ``engine="reference"`` loops the scalar per-element path
    once per target (the equivalence baseline).

    Parameters
    ----------
    traces:
        Slowest-task trace files at ascending core counts (>= 2; the
        paper uses 3).
    targets:
        Core counts to synthesize (each positive; order preserved).
    forms:
        Canonical forms to select among (paper set by default; pass
        :data:`~repro.core.canonical.EXTENDED_FORMS` for the §VI
        extension).
    rank:
        Rank id recorded in the synthetic traces (cosmetic; -1 marks
        "synthetic slowest task").
    rate_trust_factor:
        Trust-region width for rate elements, in units of the training
        range (see module docstring).  ``inf`` disables the cap.
    """
    targets = [int(t) for t in targets]
    if not targets:
        raise FitError("need at least one target core count", stage="fit")
    for t in targets:
        if t <= 0:
            raise FitError(f"target core count must be positive, got {t}", stage="fit")
    report, template = fit_traces(traces, forms=forms, engine=engine)

    results: List[ExtrapolationResult] = []
    with span(
        "extrapolate.synthesize",
        targets=len(targets),
        engine=engine,
        pairs=template.n_instructions,
    ):
        if isinstance(report, BatchedFitReport):
            sweep = report.predict_many(
                targets, rate_trust_factor=rate_trust_factor
            )
            for ti, target in enumerate(targets):
                vectors = {
                    pair: sweep.values[ti, p].copy()
                    for p, pair in enumerate(sweep.pair_keys)
                }
                trace = _build_trace(template, target, rank, vectors)
                results.append(
                    ExtrapolationResult(
                        trace=trace, report=report, target_n_ranks=target
                    )
                )
        else:
            for target in targets:
                vectors = _synthesize_reference(
                    report, template, target, rate_trust_factor
                )
                trace = _build_trace(template, target, rank, vectors)
                results.append(
                    ExtrapolationResult(
                        trace=trace, report=report, target_n_ranks=target
                    )
                )
    return ExtrapolationSweep(results=results, report=report, targets=targets)


def extrapolate_trace(
    traces: Sequence[TraceFile],
    target_n_ranks: int,
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
    rank: int = -1,
    rate_trust_factor: float = 2.0,
    engine: str = "batched",
) -> ExtrapolationResult:
    """Extrapolate a series of small-core-count traces to a large count.

    Single-target convenience wrapper over
    :func:`extrapolate_trace_many`; see that function for parameters.
    """
    sweep = extrapolate_trace_many(
        traces,
        [target_n_ranks],
        forms=forms,
        rank=rank,
        rate_trust_factor=rate_trust_factor,
        engine=engine,
    )
    return sweep.results[0]
