"""Per-element fitting across a trace series.

Applies the canonical-form selection of §IV to every element of every
instruction's feature vector over the training core counts, recording
which form won and how well it fit — the data behind Figs. 3-5 and the
<20%-error claim of §IV.

Two engines produce the same report:

- ``engine="batched"`` (default): all elements are stacked into one
  ``(n_elements, n_counts)`` matrix and fitted by
  :func:`repro.core.batchfit.batch_fit_series` in a handful of
  whole-matrix passes; per-element :class:`ElementFit` objects are
  materialized lazily on access.
- ``engine="reference"``: the original per-element Python loop over
  :func:`repro.core.canonical.fit_all` — the scalar reference the
  batched engine is property-tested against (numerical agreement to
  ~1e-9 relative, identical form selection).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batchfit import BatchFitResult, batch_fit_series
from repro.core.canonical import CanonicalForm, FitResult, PAPER_FORMS, fit_all
from repro.obs.trace import span
from repro.trace.features import FeatureSchema
from repro.util.errors import FitError


@dataclass
class ElementFit:
    """The fitted models for one (block, instruction, feature) element.

    ``candidates`` hold every applicable canonical form, best-first (SSE
    with parsimony tie-breaks).  ``fit`` is the best fit;
    :meth:`select_for_target` may *demote* it for a given prediction
    target when its extrapolation leaves the feature's physical range (a
    negative operation count, say) in favor of the next-best form that
    stays physical — without this, a least-squares line through a
    decaying count series extrapolates below zero and clamping would
    destroy the proportionality between related elements (see DESIGN.md
    §5).  Selection is pure: it never mutates the element, so
    diagnostics like :meth:`FitReport.form_histogram` and
    :meth:`training_max_rel_error` are target-independent.
    """

    block_id: int
    instr_id: int
    feature: str
    candidates: List[FitResult]
    train_x: np.ndarray
    train_y: np.ndarray

    @property
    def fit(self) -> FitResult:
        """The best fit (candidate 0), independent of any target."""
        return self.candidates[0]

    def selection_for_target(
        self, n_ranks: float, bounds: Tuple[float, float]
    ) -> int:
        """Index of the best candidate whose prediction is physical.

        A candidate is rejected if its prediction falls below the lower
        bound, or is non-positive when every training value was strictly
        positive (counts of an executed instruction cannot vanish) —
        clamping such a prediction would destroy the proportionality
        between related count elements.  Predictions *above* the upper
        bound are kept: for bounded rates, exceeding the bound is
        saturation and the caller's clamp is the physical behavior.
        If every candidate is rejected, index 0 (the best fit) wins.
        """
        lo, _hi = bounds
        require_positive = bool(np.all(self.train_y > 0))
        for i, candidate in enumerate(self.candidates):
            raw = float(candidate.predict(np.array([n_ranks]))[0])
            if not np.isfinite(raw):
                continue
            if raw < lo:
                continue
            if require_positive and raw <= 0:
                continue
            return i
        return 0

    def select_for_target(
        self, n_ranks: float, bounds: Tuple[float, float]
    ) -> FitResult:
        """Pick the best fit whose prediction at ``n_ranks`` is physical."""
        return self.candidates[self.selection_for_target(n_ranks, bounds)]

    def predict(self, n_ranks: float, bounds: Tuple[float, float]) -> float:
        """Evaluate the selected fit at a core count, clamped to bounds."""
        fit = self.select_for_target(n_ranks, bounds)
        raw = float(fit.predict(np.array([n_ranks]))[0])
        lo, hi = bounds
        return float(np.clip(raw, lo, hi))

    def training_max_rel_error(self, candidate: int = 0) -> float:
        """Worst relative training residual of one candidate (diagnostic).

        Keyed explicitly by candidate index (default: the best fit) so
        the meaning never depends on prediction history.
        """
        pred = self.candidates[candidate].predict(self.train_x)
        denom = np.maximum(np.abs(self.train_y), 1e-12)
        return float(np.max(np.abs(pred - self.train_y) / denom))


@dataclass
class FitReport:
    """All element fits of one trace-extrapolation run."""

    core_counts: List[int]
    fits: Dict[Tuple[int, int, str], ElementFit] = field(default_factory=dict)

    def fit_for(self, block_id: int, instr_id: int, feature: str) -> ElementFit:
        try:
            return self.fits[(block_id, instr_id, feature)]
        except KeyError:
            raise KeyError(
                f"no fit recorded for block {block_id}, instr {instr_id}, "
                f"feature {feature!r}"
            ) from None

    def form_histogram(self) -> Counter:
        """How often each canonical form is the best fit (target-free)."""
        return Counter(f.fit.form.name for f in self.fits.values())

    def elements(self) -> List[ElementFit]:
        return list(self.fits.values())


@dataclass
class SweepPrediction:
    """Synthesized feature values for a whole sweep of target counts.

    ``values[t, p, j]`` is the (bounds-clamped, trust-region-capped,
    re-monotonized) prediction for target ``targets[t]``, instruction
    pair ``pair_keys[p]``, feature column ``j`` — exactly the numbers
    :func:`repro.core.extrapolate.extrapolate_trace` would put in a
    synthetic trace at each target, computed from a single fit.
    """

    targets: List[int]
    pair_keys: List[Tuple[int, int]]
    schema: FeatureSchema
    values: np.ndarray  #: (n_targets, n_pairs, n_features)

    def matrix_for(self, target: int) -> np.ndarray:
        """The (n_pairs, n_features) feature matrix of one target."""
        try:
            t = self.targets.index(target)
        except ValueError:
            raise KeyError(
                f"target {target} not in sweep targets {self.targets}"
            ) from None
        return self.values[t]

    def value(
        self, target: int, block_id: int, instr_id: int, feature: str
    ) -> float:
        """One synthesized feature value of one target."""
        p = self.pair_keys.index((block_id, instr_id))
        return float(self.matrix_for(target)[p, self.schema.index(feature)])


@dataclass
class BatchedFitReport(FitReport):
    """A :class:`FitReport` backed by whole-trace fit matrices.

    Satisfies the reference report API (``fit_for`` materializes
    :class:`ElementFit` objects lazily; ``form_histogram`` is computed
    from the ranking arrays) and adds the vectorized multi-target sweep
    entry point :meth:`predict_many`.
    """

    schema: Optional[FeatureSchema] = None
    pair_keys: List[Tuple[int, int]] = field(default_factory=list)
    batch: Optional[BatchFitResult] = None

    def _row_of(self, block_id: int, instr_id: int, feature: str) -> int:
        try:
            pair = self.pair_keys.index((block_id, instr_id))
            j = self.schema.index(feature)
        except (ValueError, KeyError):
            raise KeyError(
                f"no fit recorded for block {block_id}, instr {instr_id}, "
                f"feature {feature!r}"
            ) from None
        return pair * self.schema.n_features + j

    def fit_for(self, block_id: int, instr_id: int, feature: str) -> ElementFit:
        key = (block_id, instr_id, feature)
        if key not in self.fits:
            row = self._row_of(*key)
            self.fits[key] = ElementFit(
                block_id=block_id,
                instr_id=instr_id,
                feature=feature,
                candidates=self.batch.candidates_for(row),
                train_x=self.batch.x,
                train_y=self.batch.Y[row].copy(),
            )
        return self.fits[key]

    def elements(self) -> List[ElementFit]:
        return [
            self.fit_for(bid, iid, feature)
            for bid, iid in self.pair_keys
            for feature in self.schema.fields
        ]

    def form_histogram(self) -> Counter:
        counts = np.bincount(
            self.batch.order[:, 0], minlength=len(self.batch.forms)
        )
        return Counter(
            {
                form.name: int(n)
                for form, n in zip(self.batch.forms, counts)
                if n
            }
        )

    def _bounds_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        lo_f = np.array(
            [self.schema.bounds(f)[0] for f in self.schema.fields]
        )
        hi_f = np.array(
            [self.schema.bounds(f)[1] for f in self.schema.fields]
        )
        n_pairs = len(self.pair_keys)
        return np.tile(lo_f, n_pairs), np.tile(hi_f, n_pairs)

    def predict_many(
        self,
        targets: Sequence[int],
        *,
        rate_trust_factor: float = 2.0,
    ) -> SweepPrediction:
        """Synthesize feature values for many targets from one fit.

        Applies, per (element, target), the same pipeline as the scalar
        extrapolation path — physicality-aware selection, bounds
        clamping, the rate trust region (re-clamped to bounds), and
        hit-rate re-monotonization — as whole-matrix array passes, so a
        what-if sweep over N targets costs one fit plus N cheap
        evaluations instead of N full fit+predict runs.
        """
        targets = [int(t) for t in targets]
        if not targets:
            raise FitError("need at least one sweep target", stage="fit")
        for t in targets:
            if t <= 0:
                raise FitError(
                    f"target core count must be positive, got {t}",
                    stage="fit",
                )
        lo, hi = self._bounds_arrays()
        raw, _chosen = self.batch.select_and_predict(targets, lo)
        values = np.clip(raw, lo[:, None], hi[:, None])

        schema = self.schema
        is_rate = np.tile(
            np.array([schema.is_rate_field(f) for f in schema.fields]),
            len(self.pair_keys),
        )
        if np.isfinite(rate_trust_factor) and np.any(is_rate):
            # trust region: cap the extrapolated change beyond the
            # largest training count at rate_trust_factor x the training
            # range, then re-clamp — the cap re-introduces out-of-range
            # values when the training series itself strays out of bounds
            last = self.batch.Y[:, -1]
            spread = np.ptp(self.batch.Y, axis=1)
            capped = np.clip(
                values,
                (last - rate_trust_factor * spread)[:, None],
                (last + rate_trust_factor * spread)[:, None],
            )
            capped = np.clip(capped, lo[:, None], hi[:, None])
            values = np.where(is_rate[:, None], capped, values)

        n_pairs, n_feat = len(self.pair_keys), schema.n_features
        # (n_rows, n_t) -> (n_t, n_pairs, n_feat)
        values = np.ascontiguousarray(
            values.reshape(n_pairs, n_feat, len(targets)).transpose(2, 0, 1)
        )
        hr = schema.hit_rate_slice
        # cumulative hit rates must be non-decreasing outward
        values[:, :, hr] = np.clip(
            np.maximum.accumulate(values[:, :, hr], axis=2), 0.0, 1.0
        )
        return SweepPrediction(
            targets=targets,
            pair_keys=list(self.pair_keys),
            schema=schema,
            values=values,
        )


def fit_feature_series(
    schema: FeatureSchema,
    core_counts: Sequence[int],
    series: Dict[Tuple[int, int], np.ndarray],
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
    *,
    engine: str = "batched",
) -> FitReport:
    """Fit every feature element of every instruction.

    Parameters
    ----------
    schema:
        Trace schema (names the feature columns).
    core_counts:
        Training core counts, ascending.
    series:
        ``(block_id, instr_id) -> (n_counts, n_features)`` arrays of the
        instruction's feature vectors at each training count.
    engine:
        ``"batched"`` (default) stacks all elements into one matrix and
        fits with whole-trace array passes; ``"reference"`` runs the
        per-element scalar loop the batched engine is tested against.
    """
    if engine not in ("batched", "reference"):
        raise FitError(f"unknown fitting engine {engine!r}", stage="fit")
    x = np.asarray(core_counts, dtype=np.float64)
    if np.any(np.diff(x) <= 0):
        raise FitError("core counts must be strictly ascending", stage="fit")
    matrices: List[np.ndarray] = []
    pair_keys: List[Tuple[int, int]] = []
    for (block_id, instr_id), matrix in series.items():
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (len(core_counts), schema.n_features):
            raise ValueError(
                f"series for block {block_id} instr {instr_id} has shape "
                f"{matrix.shape}, expected ({len(core_counts)}, {schema.n_features})"
            )
        matrices.append(matrix)
        pair_keys.append((block_id, instr_id))

    counts = [int(c) for c in core_counts]
    if engine == "reference":
        with span("fit.series", engine="reference", pairs=len(pair_keys)):
            report = FitReport(core_counts=counts)
            for (block_id, instr_id), matrix in zip(pair_keys, matrices):
                for j, feature in enumerate(schema.fields):
                    candidates = fit_all(x, matrix[:, j], forms)
                    report.fits[(block_id, instr_id, feature)] = ElementFit(
                        block_id=block_id,
                        instr_id=instr_id,
                        feature=feature,
                        candidates=candidates,
                        train_x=x,
                        train_y=matrix[:, j].copy(),
                    )
            return report

    with span("fit.series", engine="batched", pairs=len(pair_keys)):
        if matrices:
            # (n_pairs * n_features, n_counts): pair-major, feature-minor
            Y = np.concatenate(
                [m.T for m in matrices], axis=0
            )
        else:
            Y = np.zeros((0, len(counts)))
        batch = batch_fit_series(x, Y, forms)
        return BatchedFitReport(
            core_counts=counts,
            schema=schema,
            pair_keys=pair_keys,
            batch=batch,
        )
