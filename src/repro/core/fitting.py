"""Per-element fitting across a trace series.

Applies :func:`repro.core.canonical.fit_best` to every element of every
instruction's feature vector over the training core counts, recording
which form won and how well it fit — the data behind Figs. 3-5 and the
<20%-error claim of §IV.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.canonical import CanonicalForm, FitResult, PAPER_FORMS, fit_all
from repro.trace.features import FeatureSchema


@dataclass
class ElementFit:
    """The fitted models for one (block, instruction, feature) element.

    ``candidates`` hold every applicable canonical form, best-first (SSE
    with parsimony tie-breaks).  ``fit`` is the *selected* model: by
    default the best fit, but :meth:`select_for_target` may demote a fit
    whose extrapolation leaves the feature's physical range (a negative
    operation count, say) in favor of the next-best form that stays
    physical — without this, a least-squares line through a decaying
    count series extrapolates below zero and clamping would destroy the
    proportionality between related elements (see DESIGN.md §5).
    """

    block_id: int
    instr_id: int
    feature: str
    candidates: List[FitResult]
    train_x: np.ndarray
    train_y: np.ndarray
    selected: int = 0

    @property
    def fit(self) -> FitResult:
        return self.candidates[self.selected]

    def select_for_target(
        self, n_ranks: float, bounds: Tuple[float, float]
    ) -> FitResult:
        """Pick the best fit whose prediction at ``n_ranks`` is physical.

        A candidate is rejected if its prediction falls below the lower
        bound, or is non-positive when every training value was strictly
        positive (counts of an executed instruction cannot vanish) —
        clamping such a prediction would destroy the proportionality
        between related count elements.  Predictions *above* the upper
        bound are kept: for bounded rates, exceeding the bound is
        saturation and the caller's clamp is the physical behavior.
        If every candidate is rejected, the best fit is kept.
        """
        lo, _hi = bounds
        require_positive = bool(np.all(self.train_y > 0))
        for i, candidate in enumerate(self.candidates):
            raw = float(candidate.predict(np.array([n_ranks]))[0])
            if not np.isfinite(raw):
                continue
            if raw < lo:
                continue
            if require_positive and raw <= 0:
                continue
            self.selected = i
            return candidate
        self.selected = 0
        return self.candidates[0]

    def predict(self, n_ranks: float, bounds: Tuple[float, float]) -> float:
        """Evaluate the selected fit at a core count, clamped to bounds."""
        fit = self.select_for_target(n_ranks, bounds)
        raw = float(fit.predict(np.array([n_ranks]))[0])
        lo, hi = bounds
        return float(np.clip(raw, lo, hi))

    def training_max_rel_error(self) -> float:
        """Worst relative training residual (diagnostic)."""
        pred = self.fit.predict(self.train_x)
        denom = np.maximum(np.abs(self.train_y), 1e-12)
        return float(np.max(np.abs(pred - self.train_y) / denom))


@dataclass
class FitReport:
    """All element fits of one trace-extrapolation run."""

    core_counts: List[int]
    fits: Dict[Tuple[int, int, str], ElementFit] = field(default_factory=dict)

    def fit_for(self, block_id: int, instr_id: int, feature: str) -> ElementFit:
        try:
            return self.fits[(block_id, instr_id, feature)]
        except KeyError:
            raise KeyError(
                f"no fit recorded for block {block_id}, instr {instr_id}, "
                f"feature {feature!r}"
            ) from None

    def form_histogram(self) -> Counter:
        """How often each canonical form won selection."""
        return Counter(f.fit.form.name for f in self.fits.values())

    def elements(self) -> List[ElementFit]:
        return list(self.fits.values())


def fit_feature_series(
    schema: FeatureSchema,
    core_counts: Sequence[int],
    series: Dict[Tuple[int, int], np.ndarray],
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
) -> FitReport:
    """Fit every feature element of every instruction.

    Parameters
    ----------
    schema:
        Trace schema (names the feature columns).
    core_counts:
        Training core counts, ascending.
    series:
        ``(block_id, instr_id) -> (n_counts, n_features)`` arrays of the
        instruction's feature vectors at each training count.
    """
    x = np.asarray(core_counts, dtype=np.float64)
    if np.any(np.diff(x) <= 0):
        raise ValueError("core counts must be strictly ascending")
    report = FitReport(core_counts=[int(c) for c in core_counts])
    for (block_id, instr_id), matrix in series.items():
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (len(core_counts), schema.n_features):
            raise ValueError(
                f"series for block {block_id} instr {instr_id} has shape "
                f"{matrix.shape}, expected ({len(core_counts)}, {schema.n_features})"
            )
        for j, feature in enumerate(schema.fields):
            candidates = fit_all(x, matrix[:, j], forms)
            report.fits[(block_id, instr_id, feature)] = ElementFit(
                block_id=block_id,
                instr_id=instr_id,
                feature=feature,
                candidates=candidates,
                train_x=x,
                train_y=matrix[:, j].copy(),
            )
    return report
