"""Trace extrapolation: the paper's primary contribution (§IV).

Given trace files of the most computationally demanding MPI task at a
series of small core counts, fit each element of each instruction's
feature vector with the best of a set of canonical function forms —
constant, linear, logarithmic, exponential (paper §IV), plus the
polynomial/power/inverse extensions §VI proposes — and evaluate the
fitted models at a large core count to synthesize the trace that would
have been collected there.
"""

from repro.core.canonical import (
    CanonicalForm,
    ConstantForm,
    ExponentialForm,
    FitResult,
    InverseForm,
    LinearForm,
    LogarithmicForm,
    PowerForm,
    QuadraticForm,
    EXTENDED_FORMS,
    PAPER_FORMS,
    fit_best,
)
from repro.core.batchfit import BatchFitResult, batch_fit_series
from repro.core.fitting import (
    BatchedFitReport,
    ElementFit,
    FitReport,
    SweepPrediction,
    fit_feature_series,
)
from repro.core.influence import influential_instructions, InfluenceReport
from repro.core.extrapolate import (
    ExtrapolationResult,
    ExtrapolationSweep,
    extrapolate_trace,
    extrapolate_trace_many,
)
from repro.core.clustering import (
    ClusteredSignature,
    cluster_ranks,
    extrapolate_signature_clustered,
)
from repro.core.errors import abs_rel_error, signed_rel_error

__all__ = [
    "CanonicalForm",
    "ConstantForm",
    "LinearForm",
    "LogarithmicForm",
    "ExponentialForm",
    "PowerForm",
    "QuadraticForm",
    "InverseForm",
    "PAPER_FORMS",
    "EXTENDED_FORMS",
    "FitResult",
    "fit_best",
    "BatchFitResult",
    "batch_fit_series",
    "ElementFit",
    "FitReport",
    "BatchedFitReport",
    "SweepPrediction",
    "fit_feature_series",
    "influential_instructions",
    "InfluenceReport",
    "ExtrapolationResult",
    "ExtrapolationSweep",
    "extrapolate_trace",
    "extrapolate_trace_many",
    "ClusteredSignature",
    "cluster_ranks",
    "extrapolate_signature_clustered",
    "abs_rel_error",
    "signed_rel_error",
]
