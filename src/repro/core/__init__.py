"""Trace extrapolation: the paper's primary contribution (§IV).

Given trace files of the most computationally demanding MPI task at a
series of small core counts, fit each element of each instruction's
feature vector with the best of a set of canonical function forms —
constant, linear, logarithmic, exponential (paper §IV), plus the
polynomial/power/inverse extensions §VI proposes — and evaluate the
fitted models at a large core count to synthesize the trace that would
have been collected there.
"""

from repro.core.canonical import (
    CanonicalForm,
    ConstantForm,
    ExponentialForm,
    FitResult,
    InverseForm,
    LinearForm,
    LogarithmicForm,
    PowerForm,
    QuadraticForm,
    EXTENDED_FORMS,
    PAPER_FORMS,
    fit_best,
)
from repro.core.fitting import ElementFit, FitReport, fit_feature_series
from repro.core.influence import influential_instructions, InfluenceReport
from repro.core.extrapolate import ExtrapolationResult, extrapolate_trace
from repro.core.clustering import (
    ClusteredSignature,
    cluster_ranks,
    extrapolate_signature_clustered,
)
from repro.core.errors import abs_rel_error, signed_rel_error

__all__ = [
    "CanonicalForm",
    "ConstantForm",
    "LinearForm",
    "LogarithmicForm",
    "ExponentialForm",
    "PowerForm",
    "QuadraticForm",
    "InverseForm",
    "PAPER_FORMS",
    "EXTENDED_FORMS",
    "FitResult",
    "fit_best",
    "ElementFit",
    "FitReport",
    "fit_feature_series",
    "influential_instructions",
    "InfluenceReport",
    "ExtrapolationResult",
    "extrapolate_trace",
    "ClusteredSignature",
    "cluster_ranks",
    "extrapolate_signature_clustered",
    "abs_rel_error",
    "signed_rel_error",
]
