"""Error metrics used throughout the evaluation."""

from __future__ import annotations


_EPS = 1e-12


def abs_rel_error(expected: float, actual: float) -> float:
    """Absolute relative error |actual - expected| / |expected|.

    Matches the paper's "absolute relative error".  When the expected
    value is (numerically) zero, the error is zero iff the actual value
    is too, else infinite.
    """
    denom = abs(expected)
    if denom < _EPS:
        return 0.0 if abs(actual) < _EPS else float("inf")
    return abs(actual - expected) / denom


def signed_rel_error(expected: float, actual: float) -> float:
    """Signed relative error (positive == overprediction)."""
    denom = abs(expected)
    if denom < _EPS:
        return 0.0 if abs(actual) < _EPS else float("inf")
    return (actual - expected) / denom


def percent(x: float) -> float:
    """Fraction -> percent (display helper)."""
    return 100.0 * x
