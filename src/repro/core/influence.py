"""Influence filtering (§IV).

"This influence was determined by the ratio of memory operations the
instruction had to the total number of memory instructions and for those
instructions without memory operations, floating-point operations were
used.  The percentage deemed to have influence was anything over 0.1%."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.trace.tracefile import TraceFile

#: The paper's influence threshold: 0.1% of task-total operations.
DEFAULT_THRESHOLD = 0.001


@dataclass
class InfluenceReport:
    """Which instructions matter for the task's runtime."""

    threshold: float
    influential: List[Tuple[int, int]] = field(default_factory=list)
    total_instructions: int = 0

    def influential_set(self) -> Set[Tuple[int, int]]:
        return set(self.influential)

    @property
    def n_influential(self) -> int:
        return len(self.influential)

    def coverage(self) -> float:
        """Fraction of instructions deemed influential."""
        if self.total_instructions == 0:
            return 0.0
        return self.n_influential / self.total_instructions


def influential_instructions(
    trace: TraceFile, threshold: float = DEFAULT_THRESHOLD
) -> InfluenceReport:
    """Apply the paper's 0.1% influence rule to a trace.

    An instruction is influential if its memory-op share of the task's
    total memory ops exceeds ``threshold``; instructions with no memory
    ops are judged by their floating-point-op share instead.
    """
    schema = trace.schema
    mem_idx = schema.index("mem_ops")
    fp_idxs = [schema.index(k) for k in ("fp_add", "fp_mul", "fp_fma", "fp_div")]
    total_mem = trace.total_memory_ops()
    total_fp = trace.total_fp_ops()
    report = InfluenceReport(threshold=threshold)
    for block in trace.sorted_blocks():
        for ins in block.instructions:
            report.total_instructions += 1
            mem_ops = float(ins.features[mem_idx])
            if mem_ops > 0:
                ratio = mem_ops / total_mem if total_mem > 0 else 0.0
            else:
                fp_ops = float(sum(ins.features[j] for j in fp_idxs))
                ratio = fp_ops / total_fp if total_fp > 0 else 0.0
            if ratio > threshold:
                report.influential.append((block.block_id, ins.instr_id))
    return report
