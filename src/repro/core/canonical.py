"""Canonical function forms and per-element model selection.

The paper fits four forms to each feature element's values across the
training core counts — constant, linear, exponential, logarithmic — and
keeps the best fit (Figs. 3-5).  §VI proposes adding more forms
(polynomial etc.); those are implemented here as *extended* forms, used
by the ablation benches.

Selection is least-squares in value space with a parsimony tie-break:
when two forms explain the training data equally well (common with three
training points), the simpler form wins, which also extrapolates more
conservatively.  Forms that cannot represent the data (e.g. exponential
with mixed-sign values) report an infinite error and drop out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import check_finite

#: Relative slack within which a simpler form beats a more complex one.
_PARSIMONY_RTOL = 1e-6
#: Cap on the exponent argument to keep exponential evaluation finite.
_EXP_CLAMP = 60.0


def _linear_lsq(t: np.ndarray, y: np.ndarray) -> Optional[Tuple[float, float]]:
    """Least-squares slope/intercept of ``y ~ a + b*t``, centered.

    Centering makes the normal equations diagonal, so exactly-linear
    inputs recover their coefficients to ~machine epsilon — unlike a
    Vandermonde solve, whose conditioning degrades with ``t``'s span.
    The parsimony tie-break in :func:`fit_all` relies on this: an exact
    fit must produce an SSE at the floating-point noise floor, not at
    the solver's truncation error.  Returns ``None`` for degenerate
    (constant) ``t``.
    """
    tm = float(t.mean())
    ym = float(y.mean())
    dt = t - tm
    denom = float(dt @ dt)
    if denom == 0.0:
        return None
    b = float(dt @ (y - ym)) / denom
    return b, ym - b * tm


def _linear_lsq_batch(
    t: np.ndarray, Y: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Row-wise twin of :func:`_linear_lsq`: ``Y[i] ~ a[i] + b[i]*t``.

    One centered normal-equation solve for every row of ``Y`` at once;
    the per-row arithmetic is the same expression sequence as the scalar
    helper, so batched and scalar coefficients agree to within a few
    ulps.  Returns ``(b, a)`` vectors, or ``None`` for degenerate ``t``.
    """
    tm = float(t.mean())
    dt = t - tm
    denom = float(dt @ dt)
    if denom == 0.0:
        return None
    ym = Y.mean(axis=1)
    b = (Y - ym[:, None]) @ dt / denom
    return b, ym - b * tm


class CanonicalForm:
    """Base class: a parametric y = f(x; params) family."""

    #: short name used in reports and figures
    name: str = "?"
    #: minimum number of (distinct-x) training points to fit
    min_points: int = 2
    #: complexity rank for parsimony tie-breaks (lower wins ties)
    complexity: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> Optional[np.ndarray]:
        """Return parameters, or ``None`` if the form cannot fit this data."""
        raise NotImplementedError

    def evaluate(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def describe(self, params: np.ndarray) -> str:
        raise NotImplementedError

    def fit_batch(
        self, x: np.ndarray, Y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fit every row of ``Y`` against the shared abscissa ``x``.

        Returns ``(params, applicable)``: a ``(n_rows, n_params)`` array
        and a boolean mask of rows the form can represent.  The base
        implementation loops the scalar :meth:`fit`, so custom forms work
        with the batched engine unmodified; built-ins override it with
        closed-form whole-matrix passes.
        """
        rows = [self.fit(x, Y[i]) for i in range(Y.shape[0])]
        applicable = np.array([p is not None for p in rows], dtype=bool)
        width = max((p.size for p in rows if p is not None), default=1)
        params = np.zeros((Y.shape[0], width), dtype=np.float64)
        for i, p in enumerate(rows):
            if p is not None:
                params[i, : p.size] = p
        return params, applicable

    def evaluate_batch(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate every row's parameters at ``x``: ``(n_rows, len(x))``.

        Base implementation loops :meth:`evaluate`; built-ins override
        with broadcasting that applies the identical per-entry formula.
        """
        x = np.asarray(x, dtype=np.float64)
        return np.stack([self.evaluate(p, x) for p in params])


class ConstantForm(CanonicalForm):
    """y = a."""

    name = "constant"
    min_points = 1
    complexity = 0

    def fit(self, x, y):
        return np.array([float(np.mean(y))])

    def evaluate(self, params, x):
        return np.full_like(np.asarray(x, dtype=np.float64), params[0])

    def fit_batch(self, x, Y):
        return Y.mean(axis=1)[:, None], np.ones(Y.shape[0], dtype=bool)

    def evaluate_batch(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        return np.broadcast_to(params[:, :1], (params.shape[0], x.size))

    def describe(self, params):
        return f"y = {params[0]:.6g}"


class LinearForm(CanonicalForm):
    """y = a + b * x."""

    name = "linear"
    min_points = 2
    complexity = 1

    def fit(self, x, y):
        res = _linear_lsq(x, y)
        if res is None:
            return None
        b, a = res
        return np.array([a, b])

    def evaluate(self, params, x):
        return params[0] + params[1] * np.asarray(x, dtype=np.float64)

    def fit_batch(self, x, Y):
        res = _linear_lsq_batch(x, Y)
        if res is None:
            return np.zeros((Y.shape[0], 2)), np.zeros(Y.shape[0], dtype=bool)
        b, a = res
        return np.stack([a, b], axis=1), np.ones(Y.shape[0], dtype=bool)

    def evaluate_batch(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        return params[:, :1] + params[:, 1:2] * x[None, :]

    def describe(self, params):
        return f"y = {params[0]:.6g} + {params[1]:.6g} * x"


class LogarithmicForm(CanonicalForm):
    """y = a + b * ln(x)."""

    name = "log"
    min_points = 2
    complexity = 2

    def fit(self, x, y):
        if np.any(x <= 0):
            return None
        res = _linear_lsq(np.log(x), y)
        if res is None:
            return None
        b, a = res
        return np.array([a, b])

    def evaluate(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        return params[0] + params[1] * np.log(np.maximum(x, 1e-300))

    def fit_batch(self, x, Y):
        if np.any(x <= 0):
            return np.zeros((Y.shape[0], 2)), np.zeros(Y.shape[0], dtype=bool)
        res = _linear_lsq_batch(np.log(x), Y)
        if res is None:
            return np.zeros((Y.shape[0], 2)), np.zeros(Y.shape[0], dtype=bool)
        b, a = res
        return np.stack([a, b], axis=1), np.ones(Y.shape[0], dtype=bool)

    def evaluate_batch(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        lx = np.log(np.maximum(x, 1e-300))
        return params[:, :1] + params[:, 1:2] * lx[None, :]

    def describe(self, params):
        return f"y = {params[0]:.6g} + {params[1]:.6g} * ln(x)"


class ExponentialForm(CanonicalForm):
    """y = a * exp(b * x), fitted by log-linear regression.

    Requires strictly single-signed, non-zero values; the sign is
    factored out and restored at evaluation.
    """

    name = "exp"
    min_points = 2
    complexity = 3

    def fit(self, x, y):
        if np.all(y > 0):
            sign = 1.0
        elif np.all(y < 0):
            sign = -1.0
        else:
            return None
        res = _linear_lsq(x, np.log(sign * y))
        if res is None:
            return None
        b, log_a = res
        # np.exp (not math.exp) so an overflowing amplitude degrades to
        # inf — rejected by fit_all's finiteness check — instead of
        # raising OverflowError mid-selection
        with np.errstate(over="ignore"):
            return np.array([sign * float(np.exp(log_a)), b])

    def evaluate(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        exponent = np.clip(params[1] * x, -_EXP_CLAMP, _EXP_CLAMP)
        return params[0] * np.exp(exponent)

    def fit_batch(self, x, Y):
        n = Y.shape[0]
        params = np.zeros((n, 2))
        pos = np.all(Y > 0, axis=1)
        applicable = pos | np.all(Y < 0, axis=1)
        if not np.any(applicable):
            return params, applicable
        sign = np.where(pos[applicable], 1.0, -1.0)
        res = _linear_lsq_batch(x, np.log(sign[:, None] * Y[applicable]))
        if res is None:
            return params, np.zeros(n, dtype=bool)
        b, log_a = res
        with np.errstate(over="ignore"):
            params[applicable, 0] = sign * np.exp(log_a)
        params[applicable, 1] = b
        return params, applicable

    def evaluate_batch(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        exponent = np.clip(params[:, 1:2] * x[None, :], -_EXP_CLAMP, _EXP_CLAMP)
        return params[:, :1] * np.exp(exponent)

    def describe(self, params):
        return f"y = {params[0]:.6g} * exp({params[1]:.6g} * x)"


class PowerForm(CanonicalForm):
    """y = a * x^b (extension form, §VI): log-log regression."""

    name = "power"
    min_points = 2
    complexity = 4

    def fit(self, x, y):
        if np.any(x <= 0):
            return None
        if np.all(y > 0):
            sign = 1.0
        elif np.all(y < 0):
            sign = -1.0
        else:
            return None
        res = _linear_lsq(np.log(x), np.log(sign * y))
        if res is None:
            return None
        b, log_a = res
        with np.errstate(over="ignore"):
            return np.array([sign * float(np.exp(log_a)), b])

    def evaluate(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        with np.errstate(over="ignore"):
            return params[0] * np.power(np.maximum(x, 1e-300), params[1])

    def fit_batch(self, x, Y):
        n = Y.shape[0]
        params = np.zeros((n, 2))
        if np.any(x <= 0):
            return params, np.zeros(n, dtype=bool)
        pos = np.all(Y > 0, axis=1)
        applicable = pos | np.all(Y < 0, axis=1)
        if not np.any(applicable):
            return params, applicable
        sign = np.where(pos[applicable], 1.0, -1.0)
        res = _linear_lsq_batch(np.log(x), np.log(sign[:, None] * Y[applicable]))
        if res is None:
            return params, np.zeros(n, dtype=bool)
        b, log_a = res
        with np.errstate(over="ignore"):
            params[applicable, 0] = sign * np.exp(log_a)
        params[applicable, 1] = b
        return params, applicable

    def evaluate_batch(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        with np.errstate(over="ignore"):
            return params[:, :1] * np.power(
                np.maximum(x, 1e-300)[None, :], params[:, 1:2]
            )

    def describe(self, params):
        return f"y = {params[0]:.6g} * x^{params[1]:.6g}"


class QuadraticForm(CanonicalForm):
    """y = a + b*x + c*x^2 (extension form, §VI).

    Needs at least four points: with the paper's three training core
    counts it would interpolate exactly and always win selection, which
    is precisely the overfitting hazard §VI's "more canonical forms"
    future work has to manage.
    """

    name = "quadratic"
    min_points = 4
    complexity = 5

    def fit(self, x, y):
        c, b, a = np.polyfit(x, y, 2)
        return np.array([a, b, c])

    def evaluate(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        return params[0] + params[1] * x + params[2] * x * x

    def fit_batch(self, x, Y):
        # polyfit solves all rows against one shared Vandermonde factorization
        coeffs = np.polyfit(x, Y.T, 2)
        return coeffs[::-1].T.copy(), np.ones(Y.shape[0], dtype=bool)

    def evaluate_batch(self, params, x):
        x = np.asarray(x, dtype=np.float64)[None, :]
        return params[:, :1] + params[:, 1:2] * x + params[:, 2:3] * x * x

    def describe(self, params):
        return f"y = {params[0]:.6g} + {params[1]:.6g}*x + {params[2]:.6g}*x^2"


class InverseForm(CanonicalForm):
    """y = a + b / x (extension form): the strong-scaling natural shape."""

    name = "inverse"
    min_points = 2
    complexity = 4

    def fit(self, x, y):
        if np.any(x == 0):
            return None
        res = _linear_lsq(1.0 / x, y)
        if res is None:
            return None
        b, a = res
        return np.array([a, b])

    def evaluate(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        return params[0] + params[1] / np.where(x == 0, np.inf, x)

    def fit_batch(self, x, Y):
        if np.any(x == 0):
            return np.zeros((Y.shape[0], 2)), np.zeros(Y.shape[0], dtype=bool)
        res = _linear_lsq_batch(1.0 / x, Y)
        if res is None:
            return np.zeros((Y.shape[0], 2)), np.zeros(Y.shape[0], dtype=bool)
        b, a = res
        return np.stack([a, b], axis=1), np.ones(Y.shape[0], dtype=bool)

    def evaluate_batch(self, params, x):
        x = np.asarray(x, dtype=np.float64)
        safe = np.where(x == 0, np.inf, x)
        return params[:, :1] + params[:, 1:2] / safe[None, :]

    def describe(self, params):
        return f"y = {params[0]:.6g} + {params[1]:.6g} / x"


#: The paper's four forms (§IV), in parsimony order.
PAPER_FORMS: Tuple[CanonicalForm, ...] = (
    ConstantForm(),
    LinearForm(),
    LogarithmicForm(),
    ExponentialForm(),
)

#: §VI extensions.
EXTENDED_FORMS: Tuple[CanonicalForm, ...] = PAPER_FORMS + (
    PowerForm(),
    InverseForm(),
    QuadraticForm(),
)


@dataclass
class FitResult:
    """Outcome of fitting one form to one element's series."""

    form: CanonicalForm
    params: np.ndarray
    sse: float

    @property
    def name(self) -> str:
        return self.form.name

    def predict(self, x) -> np.ndarray:
        return self.form.evaluate(self.params, np.asarray(x, dtype=np.float64))

    def describe(self) -> str:
        return f"{self.form.name}: {self.form.describe(self.params)} (SSE={self.sse:.4g})"


def fit_all(
    x: Sequence[float],
    y: Sequence[float],
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
) -> list:
    """Fit every applicable form; return all results sorted best-first.

    "Best" means lowest SSE, with parsimony tie-breaks (lower complexity
    wins within relative tolerance).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    check_finite("x", x)
    check_finite("y", y)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    if np.unique(x).size != x.size:
        raise ValueError("training core counts must be distinct")
    results = []
    n_distinct = np.unique(x).size
    for form in forms:
        if n_distinct < form.min_points:
            continue
        params = form.fit(x, y)
        if params is None or not np.all(np.isfinite(params)):
            continue
        residual = form.evaluate(params, x) - y
        if not np.all(np.isfinite(residual)):
            continue
        results.append(FitResult(form=form, params=params, sse=float(residual @ residual)))
    if not results:
        raise ValueError("no canonical form could fit the data")
    # parsimony: every form statistically tied with the best SSE competes
    # on complexity; the rest follow in SSE order.  The absolute slack is
    # a floating-point noise floor (an exact fit's SSE is at most a few
    # ulps squared per point), NOT a fraction of the signal energy: a
    # signal-relative slack would let the constant form swallow real but
    # tiny slopes.
    scale = float(y @ y)
    eps = np.finfo(np.float64).eps
    noise_floor = x.size * (64.0 * eps) ** 2 * max(1.0, scale)
    best_sse = min(r.sse for r in results)
    threshold = best_sse * (1.0 + _PARSIMONY_RTOL) + noise_floor
    tied = sorted(
        (r for r in results if r.sse <= threshold),
        key=lambda r: (r.form.complexity, r.sse),
    )
    rest = sorted(
        (r for r in results if r.sse > threshold),
        key=lambda r: (r.sse, r.form.complexity),
    )
    return tied + rest


def fit_best(
    x: Sequence[float],
    y: Sequence[float],
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
) -> FitResult:
    """The paper's per-element step: the best fit among the given forms."""
    return fit_all(x, y, forms)[0]
