"""Batched canonical-form fitting: §IV at array speed.

Every paper form (and the §VI extensions) is linear-in-parameters in a
transformed space — constant; linear in N; linear in ln N; exponential
and power via ln y — so one centered least-squares pass per form fits
*every* (block, instruction, feature) element of a trace at once:
training series are stacked into an ``(n_elements, n_counts)`` matrix
and each form produces its coefficient columns, SSE scores, and
applicability mask (mixed-sign y for exponential/power, x <= 0 for log)
as whole-matrix numpy expressions.

The per-element path (:func:`repro.core.canonical.fit_all`) survives as
the property-tested scalar reference; this engine replicates its exact
arithmetic — the same centered normal equations, the same SSE noise
floor, the same parsimony tie-breaks — so batched results agree with
the reference to ~1e-9 relative with identical form selection (see
DESIGN.md §7.4 for the numerical-agreement contract and
``tests/test_batchfit.py`` for the property suite that enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.canonical import (
    CanonicalForm,
    FitResult,
    PAPER_FORMS,
    _PARSIMONY_RTOL,
)
from repro.obs.trace import span


@dataclass
class BatchFitResult:
    """All forms fitted to every row of one series matrix.

    ``order[i]`` ranks the form indices for row ``i`` best-first under
    the reference selection rule (SSE with parsimony tie-breaks); only
    the first ``n_candidates[i]`` entries are applicable forms, mirroring
    the candidate list :func:`repro.core.canonical.fit_all` returns.
    """

    x: np.ndarray  #: shared training abscissa, shape (n_counts,)
    Y: np.ndarray  #: training series, shape (n_rows, n_counts)
    forms: Tuple[CanonicalForm, ...]
    params: List[np.ndarray]  #: per form: (n_rows, n_params)
    sse: np.ndarray  #: (n_rows, n_forms); +inf where inapplicable
    applicable: np.ndarray  #: bool (n_rows, n_forms)
    order: np.ndarray  #: int (n_rows, n_forms) candidate ranking
    n_candidates: np.ndarray  #: (n_rows,) applicable-form counts

    @property
    def n_rows(self) -> int:
        return self.Y.shape[0]

    def candidates_for(self, row: int) -> List[FitResult]:
        """Materialize the reference-style candidate list for one row."""
        out = []
        for rank in range(int(self.n_candidates[row])):
            f = int(self.order[row, rank])
            out.append(
                FitResult(
                    form=self.forms[f],
                    params=self.params[f][row].copy(),
                    sse=float(self.sse[row, f]),
                )
            )
        return out

    def predict_all_forms(self, targets: Sequence[float]) -> np.ndarray:
        """Every form evaluated at every target: (n_forms, n_rows, n_t).

        Forms that never applied to any row (e.g. quadratic with fewer
        than four training counts — its params were never fitted) come
        back as NaN planes; selection masks them out anyway.
        """
        t = np.asarray(targets, dtype=np.float64)
        planes = []
        with np.errstate(all="ignore"):
            for f, (form, p) in enumerate(zip(self.forms, self.params)):
                if self.applicable[:, f].any():
                    planes.append(form.evaluate_batch(p, t))
                else:
                    planes.append(np.full((self.n_rows, t.size), np.nan))
        return np.stack(planes)

    def select_and_predict(
        self, targets: Sequence[float], lo: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized physicality-aware selection + evaluation.

        The whole-matrix twin of ``ElementFit.select_for_target``: for
        every (row, target) pair, walk that row's candidate ranking and
        pick the first form whose prediction is finite, not below the
        row's lower bound ``lo``, and positive wherever every training
        value was strictly positive; fall back to the best fit when all
        candidates are rejected.  Returns ``(raw, chosen)`` — the
        *unclamped* selected predictions and the chosen form indices,
        both shaped ``(n_rows, n_targets)``.
        """
        preds = self.predict_all_forms(targets)  # (n_forms, n_rows, n_t)
        require_pos = np.all(self.Y > 0, axis=1)
        with np.errstate(invalid="ignore"):
            ok = np.isfinite(preds)
            ok &= ~(preds < lo[None, :, None])
            ok &= ~(require_pos[None, :, None] & (preds <= 0.0))
        ok &= self.applicable.T[:, :, None]
        ok_rows = np.moveaxis(ok, 0, 1)  # (n_rows, n_forms, n_t)
        ok_ranked = np.take_along_axis(
            ok_rows, self.order[:, :, None], axis=1
        )
        first = np.argmax(ok_ranked, axis=1)  # (n_rows, n_t)
        rank = np.where(ok_ranked.any(axis=1), first, 0)
        chosen = np.take_along_axis(self.order, rank, axis=1)
        raw = np.take_along_axis(
            np.moveaxis(preds, 0, 1), chosen[:, None, :], axis=1
        )[:, 0, :]
        return raw, chosen


def batch_fit_series(
    x: Sequence[float],
    Y: np.ndarray,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
) -> BatchFitResult:
    """Fit every applicable form to every row of ``Y`` in one pass.

    The batched equivalent of calling :func:`fit_all(x, Y[i], forms)
    <repro.core.canonical.fit_all>` for each row: identical validation,
    identical SSE scoring, identical parsimony ordering — expressed as a
    handful of whole-matrix operations.
    """
    x = np.asarray(x, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if x.ndim != 1 or Y.ndim != 2 or Y.shape[1] != x.size:
        raise ValueError(
            f"Y must be (n_rows, {x.size}) to match x, got {Y.shape}"
        )
    if not np.all(np.isfinite(x)):
        raise ValueError("x contains non-finite values")
    if not np.all(np.isfinite(Y)):
        raise ValueError("y contains non-finite values")
    n_distinct = np.unique(x).size
    if n_distinct != x.size:
        raise ValueError("training core counts must be distinct")

    n_rows, n_forms = Y.shape[0], len(forms)
    sse = np.full((n_rows, n_forms), np.inf)
    applicable = np.zeros((n_rows, n_forms), dtype=bool)
    params_list: List[np.ndarray] = []
    with span("fit.batch", rows=n_rows, forms=n_forms):
        for f, form in enumerate(forms):
            if n_distinct < form.min_points:
                params_list.append(np.zeros((n_rows, 1)))
                continue
            params, ok = form.fit_batch(x, Y)
            params_list.append(params)
            ok = ok & np.all(np.isfinite(params), axis=1)
            if not np.any(ok):
                continue
            with np.errstate(all="ignore"):
                residual = form.evaluate_batch(params, x) - Y
            residual = np.where(ok[:, None], residual, 0.0)
            ok &= np.all(np.isfinite(residual), axis=1)
            applicable[:, f] = ok
            sse[:, f] = np.where(
                ok, np.einsum("ij,ij->i", residual, residual), np.inf
            )

    n_candidates = applicable.sum(axis=1)
    if np.any(n_candidates == 0):
        bad = int(np.argmin(n_candidates))
        raise ValueError(
            f"no canonical form could fit the data (row {bad})"
        )

    # parsimony: same thresholds as fit_all — forms statistically tied
    # with the best SSE compete on complexity, the rest follow in SSE
    # order; the noise floor is absolute (see canonical.fit_all)
    scale = np.einsum("ij,ij->i", Y, Y)
    eps = np.finfo(np.float64).eps
    noise_floor = x.size * (64.0 * eps) ** 2 * np.maximum(1.0, scale)
    best = sse.min(axis=1)
    threshold = best * (1.0 + _PARSIMONY_RTOL) + noise_floor
    complexity = np.array([f.complexity for f in forms], dtype=np.float64)
    tied = applicable & (sse <= threshold[:, None])
    group = np.where(tied, 0.0, np.where(applicable, 1.0, 2.0))
    key2 = np.where(tied, complexity[None, :], sse)
    key3 = np.where(tied, sse, complexity[None, :])
    # stable row-wise sort by (group, key2, key3) — equal keys keep forms
    # order, matching the reference's stable sorted() over a list built
    # in forms order
    order = np.lexsort((key3, key2, group), axis=-1)
    return BatchFitResult(
        x=x,
        Y=Y,
        forms=tuple(forms),
        params=params_list,
        sse=sse,
        applicable=applicable,
        order=order,
        n_candidates=n_candidates,
    )
