"""Task clustering (§VI future work, implemented as an extension).

"We believe that we can improve the accuracy of the synthetic traces by
using clustering algorithms ... first cluster MPI-tasks with similar
properties and then use the 'centroid' file from each cluster as a base
to extrapolate data in the centroid trace files."

This module clusters the ranks of a full application signature by their
block-aggregate feature vectors (deterministic k-means), picks the rank
closest to each centroid as the cluster's representative trace, matches
clusters across training core counts by workload ordering, and
extrapolates each cluster's centroid trace — yielding a *family* of
extrapolated traces plus each cluster's projected share of ranks, instead
of the single slowest-task trace the paper's main method uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.canonical import CanonicalForm, PAPER_FORMS, fit_best
from repro.core.extrapolate import ExtrapolationResult, extrapolate_trace
from repro.trace.signature import ApplicationSignature
from repro.trace.tracefile import TraceFile
from repro.util.rng import RngStream, stream


def _rank_feature_matrix(signature: ApplicationSignature) -> Tuple[np.ndarray, List[int]]:
    """Stack per-rank summary vectors: block-aggregate features, flattened.

    Features are log1p-transformed (counts span orders of magnitude) and
    z-normalized per column so no single feature dominates the metric.
    """
    ranks = signature.ranks
    if not ranks:
        raise ValueError("signature has no materialized traces to cluster")
    rows = []
    for r in ranks:
        trace = signature.traces[r]
        vec: List[float] = []
        for block in trace.sorted_blocks():
            agg = block.aggregate(trace.schema)
            vec.extend(agg[f] for f in trace.schema.fields)
        rows.append(vec)
    matrix = np.log1p(np.abs(np.asarray(rows, dtype=np.float64)))
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std == 0] = 1.0
    return (matrix - mean) / std, ranks


def _kmeans(
    points: np.ndarray, k: int, rng: RngStream, *, n_iter: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic Lloyd's k-means with k-means++ seeding."""
    n = points.shape[0]
    if k > n:
        raise ValueError(f"cannot form {k} clusters from {n} ranks")
    # k-means++ initialization
    centers = [points[int(rng.integers(0, n))]]
    for _ in range(1, k):
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = d2.sum()
        if total <= 0:
            # all remaining points coincide with a center; pick arbitrarily
            centers.append(points[int(rng.integers(0, n))])
            continue
        probs = d2 / total
        centers.append(points[int(rng.choice(n, p=probs))])
    centers = np.stack(centers)
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        dists = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if members.size:
                centers[j] = members.mean(axis=0)
    return labels, centers


@dataclass
class ClusteredSignature:
    """Clustering of one signature's ranks."""

    signature: ApplicationSignature
    k: int
    labels: Dict[int, int]
    representatives: List[int]

    def members(self, cluster: int) -> List[int]:
        return sorted(r for r, c in self.labels.items() if c == cluster)

    def share(self, cluster: int) -> float:
        return len(self.members(cluster)) / len(self.labels)


def cluster_ranks(
    signature: ApplicationSignature,
    k: int,
    *,
    rng: Optional[RngStream] = None,
) -> ClusteredSignature:
    """Cluster a signature's ranks into ``k`` groups of similar tasks.

    Clusters are relabeled in descending total-memory-ops order of their
    representatives, giving a workload-stable ordering that lets
    clusterings at different core counts be matched index-to-index.
    """
    if rng is None:
        rng = stream("clustering", signature.app, signature.n_ranks, k)
    points, ranks = _rank_feature_matrix(signature)
    labels_arr, centers = _kmeans(points, k, rng)
    # representative = member closest to its centroid
    reps = []
    for j in range(k):
        member_idx = np.flatnonzero(labels_arr == j)
        if member_idx.size == 0:
            raise ValueError(f"cluster {j} is empty (k={k} too large?)")
        d = np.linalg.norm(points[member_idx] - centers[j], axis=1)
        reps.append(ranks[int(member_idx[int(d.argmin())])])
    # stable ordering: heaviest cluster first
    weights = [
        signature.traces[rep].total_memory_ops() for rep in reps
    ]
    order = sorted(range(k), key=lambda j: (-weights[j], reps[j]))
    relabel = {old: new for new, old in enumerate(order)}
    labels = {
        rank: relabel[int(lab)] for rank, lab in zip(ranks, labels_arr)
    }
    representatives = [reps[j] for j in order]
    return ClusteredSignature(
        signature=signature, k=k, labels=labels, representatives=representatives
    )


@dataclass
class ClusteredExtrapolation:
    """Per-cluster extrapolated traces plus projected rank shares."""

    target_n_ranks: int
    k: int
    traces: List[TraceFile]
    shares: List[float]
    results: List[ExtrapolationResult] = field(default_factory=list)

    def weighted_total_compute(self, per_trace_time) -> float:
        """Combine a per-trace scalar (e.g. compute time) by rank share."""
        return sum(
            s * per_trace_time(t) for s, t in zip(self.shares, self.traces)
        )


def extrapolate_signature_clustered(
    signatures: Sequence[ApplicationSignature],
    target_n_ranks: int,
    k: int,
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
) -> ClusteredExtrapolation:
    """Cluster each training signature; extrapolate per-cluster centroids.

    Clusters are matched across core counts by their workload ordering
    (see :func:`cluster_ranks`); each matched family of centroid traces
    is extrapolated like a slowest-task series, and cluster rank-shares
    are themselves fitted with the canonical forms to project the share
    at the target count.
    """
    if len(signatures) < 2:
        raise ValueError("need at least 2 training signatures")
    signatures = sorted(signatures, key=lambda s: s.n_ranks)
    clusterings = [cluster_ranks(sig, k) for sig in signatures]
    counts = np.array([s.n_ranks for s in signatures], dtype=np.float64)
    traces: List[TraceFile] = []
    shares: List[float] = []
    results: List[ExtrapolationResult] = []
    for j in range(k):
        family = [
            cl.signature.traces[cl.representatives[j]] for cl in clusterings
        ]
        res = extrapolate_trace(family, target_n_ranks, forms=forms)
        results.append(res)
        traces.append(res.trace)
        share_series = np.array([cl.share(j) for cl in clusterings])
        share_fit = fit_best(counts, share_series, forms)
        shares.append(
            float(np.clip(share_fit.predict(np.array([target_n_ranks]))[0], 0.0, 1.0))
        )
    total = sum(shares)
    if total > 0:
        shares = [s / total for s in shares]
    return ClusteredExtrapolation(
        target_n_ranks=target_n_ranks,
        k=k,
        traces=traces,
        shares=shares,
        results=results,
    )
