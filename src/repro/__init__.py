"""repro: trace extrapolation for large-scale computation behavior.

A full reproduction of Carrington, Laurenzano & Tiwari, *Inferring
Large-scale Computation Behavior via Trace Extrapolation* (IPDPSW 2013),
including the PMaC-style modeling substrate it runs on:

- :mod:`repro.core` — the contribution: canonical-form fitting and
  trace extrapolation (plus the §VI extensions).
- :mod:`repro.cache`, :mod:`repro.machine` — target-system cache
  simulation and MultiMAPS-style machine profiles.
- :mod:`repro.instrument`, :mod:`repro.trace` — PEBIL-like signature
  collection and the trace data model.
- :mod:`repro.simmpi`, :mod:`repro.psins` — simulated MPI jobs and
  PSiNS-style replay / ground-truth execution.
- :mod:`repro.apps` — SPECFEM3D / UH3D / Jacobi proxy workloads.
- :mod:`repro.pipeline` — end-to-end experiment drivers (Table I etc.).

Quickstart::

    from repro import (
        get_app, get_machine, collect_signature, extrapolate_trace,
        predict_runtime,
    )

    app = get_app("jacobi")
    machine = get_machine("blue_waters_p1")
    traces = [
        collect_signature(app, p, machine.hierarchy).slowest_trace()
        for p in (8, 16, 32)
    ]
    result = extrapolate_trace(traces, 128)
    prediction = predict_runtime(app, 128, result.trace, machine)
    print(prediction.runtime_s)
"""

from repro.apps import get_app
from repro.core import (
    EXTENDED_FORMS,
    PAPER_FORMS,
    extrapolate_trace,
    extrapolate_trace_many,
    fit_best,
    influential_instructions,
)
from repro.machine import get_machine
from repro.pipeline import (
    collect_signature,
    measure_runtime,
    predict_runtime,
    run_table1,
    table1_report,
)
from repro.trace import ApplicationSignature, TraceFile

__version__ = "1.0.0"

__all__ = [
    "get_app",
    "get_machine",
    "collect_signature",
    "extrapolate_trace",
    "extrapolate_trace_many",
    "fit_best",
    "influential_instructions",
    "PAPER_FORMS",
    "EXTENDED_FORMS",
    "predict_runtime",
    "measure_runtime",
    "run_table1",
    "table1_report",
    "TraceFile",
    "ApplicationSignature",
    "__version__",
]
