"""Parallel execution substrate.

Two independent throughput levers for the collection pipeline:

- :mod:`repro.exec.pool` — deterministic process-pool fan-out of
  independent tasks (rank traces, per-core-count signatures).
- :mod:`repro.exec.sigcache` — on-disk memoization of collected
  signatures so repeated experiments and benchmarks skip recollection.
"""

from repro.exec.pool import in_worker, resolve_workers, run_tasks
from repro.exec.sigcache import SCHEMA_VERSION, CacheStats, SignatureCache

__all__ = [
    "CacheStats",
    "SCHEMA_VERSION",
    "SignatureCache",
    "in_worker",
    "resolve_workers",
    "run_tasks",
]
