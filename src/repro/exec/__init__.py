"""Parallel execution substrate.

Three layers for the collection pipeline:

- :mod:`repro.exec.pool` — deterministic process-pool fan-out of
  independent tasks (rank traces, per-core-count signatures).
- :mod:`repro.exec.sigcache` — on-disk memoization of collected
  signatures (digest-verified, corruption-quarantining) so repeated
  experiments and benchmarks skip recollection.
- :mod:`repro.exec.resilience` — fault-tolerant fan-out: per-task
  timeouts, bounded deterministic retries, pool restart on worker
  crash, serial fallback, and a :class:`RunReport` of recovery events.
  :mod:`repro.exec.faults` is the matching deterministic
  fault-injection harness that keeps every recovery path tested.
"""

from repro.exec.faults import (
    ENV_FAULT_PLAN,
    FaultPlan,
    FaultSpec,
    active_plan,
    apply_fault,
    injected,
    install_plan,
)
from repro.exec.pool import in_worker, resolve_workers, run_tasks
from repro.exec.resilience import (
    ResilienceConfig,
    RunReport,
    run_tasks_resilient,
)
from repro.exec.sigcache import SCHEMA_VERSION, CacheStats, SignatureCache

__all__ = [
    "CacheStats",
    "ENV_FAULT_PLAN",
    "FaultPlan",
    "FaultSpec",
    "ResilienceConfig",
    "RunReport",
    "SCHEMA_VERSION",
    "SignatureCache",
    "active_plan",
    "apply_fault",
    "in_worker",
    "injected",
    "install_plan",
    "resolve_workers",
    "run_tasks",
    "run_tasks_resilient",
]
