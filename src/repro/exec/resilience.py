"""Fault-tolerant task execution on top of :mod:`repro.exec.pool`.

:func:`run_tasks_resilient` preserves ``run_tasks``' contract — a list
of argument tuples in, results out in submission order — and adds the
recovery machinery a long pipeline run needs:

- **per-attempt timeouts** (pool mode): a hung worker is detected,
  killed with its pool, and the task re-attempted in a fresh pool;
- **bounded retries** with *deterministic* backoff: the sleep before
  attempt *k* of task *key* is drawn from the keyed RNG stream
  ``("resilience", "backoff", key, k)``, so two identical runs retry on
  an identical schedule;
- **pool restart** on worker crash (``BrokenProcessPool``), bounded by
  ``pool_restart_limit``, after which execution **degrades to serial**
  in the parent process rather than giving up;
- a :class:`RunReport` tallying every recovery event.

Determinism survives all of it because tasks are pure functions of
their arguments (see :mod:`repro.exec.pool`): a retry, a restart, or a
serial fallback replays exactly the same computation, so the *results*
of a faulty run are bit-identical to a fault-free serial run — only the
report differs.

Tasks are submitted in **waves** of at most ``pool size`` at a time.
That gives the timeout a sound meaning (every task in a wave holds a
worker, so a per-attempt deadline is a wall-clock deadline, never a
queueing artifact) at the cost of a barrier per wave — the right trade
for a recovery-oriented executor; the streaming fast path remains
``run_tasks``.

Faults planned via :mod:`repro.exec.faults` are applied at task entry
in both pool and serial modes, which is how the tests drive every
branch above.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.exec import faults
from repro.exec.pool import _mp_context, _worker_init, resolve_workers
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.util.errors import (
    TaskCrashError,
    TaskTimeoutError,
    TransientTaskError,
)
from repro.util.rng import stream

T = TypeVar("T")

log = get_logger("exec.resilience")


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry/timeout/fallback policy for :func:`run_tasks_resilient`.

    ``max_retries`` is the number of *additional* attempts per task
    beyond the first.  ``task_timeout_s`` is enforced per attempt and
    only in pool mode (a serial task cannot be preempted from within
    the same process).  All fields are execution mechanics: like
    ``workers``, they can never change results and are excluded from
    signature-cache keys.
    """

    task_timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    pool_restart_limit: int = 2
    retry_exceptions: Tuple[type, ...] = (TransientTaskError, OSError)


@dataclass
class RunReport:
    """Tally of every recovery event in one run (shared across batches)."""

    retries: int = 0  #: task re-submissions, all causes
    transient_errors: int = 0  #: retryable exceptions observed
    timeouts: int = 0  #: per-attempt deadline expiries
    crashes: int = 0  #: BrokenProcessPool events (worker deaths)
    pool_restarts: int = 0  #: pools torn down and rebuilt
    serial_fallbacks: int = 0  #: degradations to in-process execution
    cache_corruptions: int = 0  #: quarantined cache entries (via sigcache)
    quarantined: List[str] = field(default_factory=list)
    events: List[str] = field(default_factory=list)

    #: counter fields, in summary() order (the metrics mirroring surface)
    COUNTER_FIELDS = (
        "retries",
        "transient_errors",
        "timeouts",
        "crashes",
        "pool_restarts",
        "serial_fallbacks",
        "cache_corruptions",
    )

    def bump(self, name: str, n: int = 1) -> None:
        """Increment one tally, mirrored into the global metrics registry.

        The report stays the per-run view; ``resilience.<name>`` in
        :data:`repro.obs.metrics.REGISTRY` accumulates the same counts
        for the metrics exporter.
        """
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"resilience.{name}", n)

    def record(self, message: str) -> None:
        self.events.append(message)
        REGISTRY.inc("resilience.events")
        log.warning("%s", message)

    def to_dict(self) -> dict:
        """JSON view: every tally plus the event/quarantine lists."""
        doc = {name: getattr(self, name) for name in self.COUNTER_FIELDS}
        doc["quarantined"] = list(self.quarantined)
        doc["events"] = list(self.events)
        return doc

    @property
    def clean(self) -> bool:
        """True when no recovery machinery fired."""
        return not self.events and not (
            self.retries
            or self.transient_errors
            or self.timeouts
            or self.crashes
            or self.pool_restarts
            or self.serial_fallbacks
            or self.cache_corruptions
        )

    def summary(self) -> str:
        return (
            f"retries={self.retries} transient={self.transient_errors} "
            f"timeouts={self.timeouts} crashes={self.crashes} "
            f"pool_restarts={self.pool_restarts} "
            f"serial_fallbacks={self.serial_fallbacks} "
            f"cache_corruptions={self.cache_corruptions} "
            f"quarantined={len(self.quarantined)}"
        )


def backoff_s(key: str, attempt: int, config: ResilienceConfig) -> float:
    """Deterministic jittered exponential backoff before a retry.

    Keyed by ``(key, attempt)``: independent of pool scheduling, wall
    time, and every other task — identical runs back off identically.
    """
    ceiling = min(
        config.backoff_base_s * (2.0 ** (attempt - 1)), config.backoff_max_s
    )
    jitter = stream("resilience", "backoff", key, attempt).uniform(0.5, 1.0)
    return float(ceiling * jitter)


def _call_with_faults(fn, key: str, attempt: int, args: tuple):
    """Task wrapper (module-level, hence picklable): faults then fn.

    Routes through :func:`repro.obs.trace.call_shipped` so the task runs
    with log context and, when tracing is enabled, under an ``exec.task``
    span — shipped back inside a ``TaskEnvelope`` from pool workers
    (the caller unwraps with :func:`repro.obs.trace.unwrap`).
    """
    faults.apply_fault(key, attempt)
    return obs_trace.call_shipped(fn, key, args)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on possibly-hung workers.

    ``shutdown`` never interrupts a running (possibly hung) task, so the
    worker processes are hard-killed directly.  ``_processes`` is a
    CPython internal; the access is guarded so a layout change degrades
    to a slow (not wrong) teardown.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for proc in processes:
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already dead
            pass


def run_tasks_resilient(
    fn: Callable[..., T],
    tasks: Iterable[Sequence],
    *,
    keys: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    config: Optional[ResilienceConfig] = None,
    report: Optional[RunReport] = None,
    on_result: Optional[Callable[[int, T], None]] = None,
    stage: str = "exec",
    collect_errors: bool = False,
) -> Tuple[List[T], RunReport]:
    """Run ``fn(*task)`` for every task with retries/timeouts/fallback.

    Parameters
    ----------
    keys:
        Stable per-task names (used for fault matching, backoff
        derivation, and error context).  Defaults to ``task<i>``.
    report:
        A shared :class:`RunReport` to accumulate into (one report can
        span several batches of one pipeline run).
    on_result:
        Called in the parent as ``on_result(index, result)`` the moment
        a task's final result lands (out of submission order) — the
        checkpoint hook: callers persist each unit as it completes.
    collect_errors:
        When true, a task's *final* failure (retryable attempts
        exhausted, or a deterministic error) lands in its results slot
        as the exception object instead of aborting the whole run — the
        serving tier's per-query fault isolation: one broken unit must
        not poison its batch neighbors.

    Returns ``(results, report)`` with results in submission order.
    Deterministic failures propagate immediately; retryable failures
    propagate once attempts are exhausted, as taxonomy errors carrying
    the task key and attempt count (or, with ``collect_errors``, are
    returned in place).
    """
    config = config or ResilienceConfig()
    report = report if report is not None else RunReport()
    task_list = [tuple(t) for t in tasks]
    n = len(task_list)
    if keys is None:
        key_list = [f"task{i}" for i in range(n)]
    else:
        key_list = [str(k) for k in keys]
        if len(key_list) != n:
            raise ValueError(
                f"{len(key_list)} keys for {n} tasks; they must pair up"
            )
    results: List[Optional[T]] = [None] * n
    pending = deque((i, 1) for i in range(n))

    def finish(i: int, value: T) -> None:
        results[i] = value
        if on_result is not None:
            on_result(i, value)

    def fail(i: int, exc: BaseException) -> None:
        """A task's final failure: collect it in place or propagate."""
        if collect_errors and isinstance(exc, Exception):
            report.record(f"collected failure in {key_list[i]}: {exc}")
            finish(i, exc)  # type: ignore[arg-type]
            return
        raise exc

    def requeue(i: int, attempt: int, exc: BaseException, *, sleep: bool) -> None:
        """Schedule a retry of task ``i`` or fail it if attempts are spent."""
        key = key_list[i]
        if attempt > config.max_retries:
            if isinstance(exc, (TaskTimeoutError, TaskCrashError)):
                # re-wrap from the base message so the final error carries
                # one context block, not one per retry layer
                message = getattr(exc, "base_message", None) or (
                    str(exc.args[0]) if exc.args else "task failed"
                )
                fail(i, type(exc)(
                    message, stage=stage, task_key=key, attempts=attempt
                ))
                return
            fail(i, exc)
            return
        report.bump("retries")
        if sleep:
            time.sleep(backoff_s(key, attempt, config))
        pending.append((i, attempt + 1))

    def run_serial(remaining: deque) -> None:
        while remaining:
            i, attempt = remaining.popleft()
            key = key_list[i]
            try:
                # unwrap matters here too: serial execution *inside* a
                # pool worker (a nested resilient fan-out) still ships
                # envelopes, which absorb back into this process's state
                value = obs_trace.unwrap(
                    _call_with_faults(fn, key, attempt, task_list[i])
                )
            except config.retry_exceptions as exc:
                report.bump("transient_errors")
                report.record(f"transient error in {key} (attempt {attempt}): {exc}")
                requeue(i, attempt, exc, sleep=True)
            except TaskCrashError as exc:
                report.bump("crashes")
                report.record(f"crash in {key} (attempt {attempt}): {exc}")
                requeue(i, attempt, exc, sleep=True)
            except Exception as exc:
                # deterministic failure: retrying would replay it
                fail(i, exc)
            else:
                finish(i, value)

    pool_size = resolve_workers(workers, n)
    if pool_size == 0:
        run_serial(pending)
        return [r for r in results], report  # type: ignore[misc]

    restarts = 0
    pool: Optional[ProcessPoolExecutor] = None
    try:
        while pending:
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=pool_size,
                    mp_context=_mp_context(),
                    initializer=_worker_init,
                )
            # one wave: every submitted task holds a worker, so the
            # per-attempt timeout below is a true wall-clock deadline
            wave = [
                pending.popleft()
                for _ in range(min(pool_size, len(pending)))
            ]
            futures = {
                pool.submit(
                    _call_with_faults, fn, key_list[i], attempt, task_list[i]
                ): (i, attempt)
                for i, attempt in wave
            }
            done, not_done = wait(futures, timeout=config.task_timeout_s)
            pool_broken = False
            for future in done:
                i, attempt = futures[future]
                key = key_list[i]
                try:
                    value = obs_trace.unwrap(future.result())
                except BrokenProcessPool as exc:
                    pool_broken = True
                    requeue(i, attempt, TaskCrashError(
                        f"worker crashed: {exc}", task_key=key,
                    ), sleep=False)
                except config.retry_exceptions as exc:
                    report.bump("transient_errors")
                    report.record(
                        f"transient error in {key} (attempt {attempt}): {exc}"
                    )
                    requeue(i, attempt, exc, sleep=True)
                except Exception as exc:
                    # deterministic failure: retrying would replay it
                    fail(i, exc)
                else:
                    finish(i, value)
            if not_done:
                # deadline expired with attempts still running: those
                # workers may be hung — kill the pool and re-attempt
                for future in not_done:
                    i, attempt = futures[future]
                    key = key_list[i]
                    report.bump("timeouts")
                    report.record(
                        f"timeout in {key} (attempt {attempt}, "
                        f"budget {config.task_timeout_s}s)"
                    )
                    requeue(i, attempt, TaskTimeoutError(
                        f"exceeded {config.task_timeout_s}s budget",
                        task_key=key,
                    ), sleep=False)
                _kill_pool(pool)
                pool = None
                restarts += 1
                report.bump("pool_restarts")
                report.record("pool killed after timeout")
            elif pool_broken:
                report.bump("crashes")
                _kill_pool(pool)
                pool = None
                restarts += 1
                report.bump("pool_restarts")
                report.record("pool restarted after worker crash")
            if pool is None and pending and restarts > config.pool_restart_limit:
                report.bump("serial_fallbacks")
                report.record(
                    f"pool failed {restarts}x "
                    f"(limit {config.pool_restart_limit}); "
                    f"degrading {len(pending)} task(s) to serial"
                )
                run_serial(pending)
                break
    except BaseException:
        if pool is not None:
            _kill_pool(pool)
            pool = None
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return [r for r in results], report  # type: ignore[misc]
