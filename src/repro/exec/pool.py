"""Deterministic process-pool fan-out.

Every stochastic computation in this codebase derives its randomness
from a *keyed* RNG stream (:func:`repro.util.rng.stream`), never from
call order or shared-generator state.  Executing independent tasks
concurrently therefore cannot change any result: parallel output is
bit-for-bit identical to serial by construction, and this module only
supplies the fan-out mechanics.

``run_tasks`` is intentionally tiny: a list of argument tuples in, a
list of results out, in submission order.  ``workers=0`` (or ``1``)
runs the tasks inline in the calling process — the escape hatch for
debugging and for environments where ``fork`` is unavailable or
unwanted.  Worker processes are flagged via an environment variable so
a task that itself calls ``run_tasks`` degrades to serial instead of
spawning a nested pool.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.obs import trace as obs_trace

T = TypeVar("T")

#: set in worker processes so nested ``run_tasks`` calls stay serial
_WORKER_ENV = "REPRO_EXEC_WORKER"


def _worker_init() -> None:
    os.environ[_WORKER_ENV] = "1"
    # fresh per-worker observability state: an empty tracer (the parent's
    # buffered spans must not be shipped back twice) and a zeroed
    # metrics registry (the fork otherwise inherits the parent's counts)
    import repro.obs

    repro.obs.worker_init()


def in_worker() -> bool:
    """True when running inside a ``run_tasks`` pool worker."""
    return os.environ.get(_WORKER_ENV) == "1"


def resolve_workers(workers: Optional[int], n_tasks: int) -> int:
    """Resolve a ``workers`` request to a pool size (0 = run inline).

    ``None`` asks for one worker per CPU (capped at the task count);
    ``0``/``1`` force serial execution; anything larger is capped at
    the task count.  Nested calls (from inside a pool worker) always
    resolve to serial.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if n_tasks <= 1 or in_worker():
        return 0
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1:
        return 0
    return min(workers, n_tasks)


def _mp_context():
    # fork is substantially cheaper than spawn and inherits the loaded
    # modules; fall back to the platform default where it is missing
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context()


def run_tasks(
    fn: Callable[..., T],
    tasks: Iterable[Sequence],
    *,
    workers: Optional[int] = None,
    keys: Optional[Sequence[str]] = None,
) -> List[T]:
    """Run ``fn(*task)`` for every task; results in task order.

    ``fn`` and every task element must be picklable (module-level
    functions, dataclasses, builtins).  Exceptions raised by a task
    propagate to the caller, as they would serially.

    ``keys`` optionally names the tasks for observability (span labels
    and per-task log context); it never affects scheduling or results.
    When span tracing is enabled, pooled calls are routed through
    :func:`repro.obs.trace.call_shipped` so each worker's completed
    spans travel back with its result and land in the parent's tracer.
    """
    task_list = [tuple(t) for t in tasks]
    pool_size = resolve_workers(workers, len(task_list))
    if pool_size == 0:
        return [fn(*t) for t in task_list]
    key_list = (
        [str(k) for k in keys]
        if keys is not None
        else [f"task{i}" for i in range(len(task_list))]
    )
    shipping = obs_trace.is_enabled()
    pool = ProcessPoolExecutor(
        max_workers=pool_size,
        mp_context=_mp_context(),
        initializer=_worker_init,
    )
    try:
        if shipping:
            futures = [
                pool.submit(obs_trace.call_shipped, fn, key, t)
                for key, t in zip(key_list, task_list)
            ]
        else:
            futures = [pool.submit(fn, *t) for t in task_list]
        results = [obs_trace.unwrap(f.result()) for f in futures]
    except BaseException:
        # fail fast: a task error or Ctrl-C must not wait out every
        # submitted task — drop the queue and return immediately
        # (already-running tasks finish in the background)
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results
