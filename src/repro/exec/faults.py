"""Deterministic fault injection for exercising recovery paths.

Every recovery path in the resilience layer (retry, pool restart,
serial fallback, cache quarantine) is tested rather than trusted, which
requires injecting failures *on demand and deterministically*.  A
:class:`FaultPlan` is a list of :class:`FaultSpec` entries; each matches
task keys by :mod:`fnmatch` pattern and fires only on listed 1-based
attempt numbers, so "crash on the first attempt, succeed on the retry"
is expressible without cross-process counters.

Activation is layered:

- tests call :func:`install_plan` / the :func:`injected` context
  manager (process-global override), or
- the ``REPRO_FAULT_PLAN`` environment variable holds the plan as JSON
  text (or ``@/path/to/plan.json``), which forked pool workers inherit.

Fault kinds:

=========  ==========================================================
``raise``  raise :class:`~repro.util.errors.TransientTaskError`
``hang``   sleep ``seconds`` (pair with the executor's task timeout)
``crash``  ``os._exit`` inside a pool worker (→ ``BrokenProcessPool``);
           in serial execution it degrades to raising
           :class:`~repro.util.errors.TaskCrashError` so the parent
           process is never killed
``corrupt``  truncate a just-written signature-cache entry (matched
           against the cache key; consumed by
           :meth:`repro.exec.sigcache.SignatureCache.put`)
``poison-trace``  overwrite one trace feature element with an invalid
           value (NaN by default; any float via ``value``) right after
           collection (matched against the rank task key; consumed by
           :func:`poison_trace` in the collection path) — the fault
           that exercises the guard subsystem's degradation ladder
``slow-predict``  sleep ``seconds`` inside a serving batch execution
           (matched against the batch key ``serve:batch:<digest>:<kind>``
           with the attempt number counting that key's batches) — the
           fault that exercises per-query deadlines
``predict-raise``  raise :class:`~repro.util.errors.ServeError` inside
           a serving batch execution — the fault that drives the
           per-model circuit breaker
``corrupt-model-entry``  truncate one file of a just-persisted registry
           model (``feature`` selects ``meta``/``matrix``/``template``;
           matched against the model digest, attempts counting stores)
           — the fault that exercises registry quarantine + refit
``node-crash``  ``crash`` semantics scoped to pipeline-DAG node
           execution (matched against the node task key
           ``dag:<node-name>`` with the executor's attempt number) —
           the fault that exercises exactly-once node execution under
           worker death and retry
``corrupt-node-artifact``  truncate a committed DAG node artifact right
           before a later run re-validates it for reuse (matched
           against ``dag:<node-name>``, attempts counting validations
           of an existing artifact) — bit-rot between runs; the
           verification quarantines it and recomputes the node
``stale-lock``  plant an already-stale node lockfile right before the
           DAG tries to acquire it (matched against ``dag:<node-name>``,
           attempts counting acquisition tries) — the fault that
           exercises stale-lock takeover between concurrent
           ``repro dag run`` processes
=========  ==========================================================
"""

from __future__ import annotations

import fnmatch
import json
import os
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.exec.pool import in_worker
from repro.util.errors import ServeError, TaskCrashError, TransientTaskError

#: environment variable holding a JSON plan (or ``@path`` to one)
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

KINDS = (
    "raise",
    "hang",
    "crash",
    "corrupt",
    "poison-trace",
    "slow-predict",
    "predict-raise",
    "corrupt-model-entry",
    "node-crash",
    "corrupt-node-artifact",
    "stale-lock",
)

#: exit status used by injected worker crashes (recognizable in logs)
CRASH_EXIT_CODE = 17


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: *which* task, *when*, and *how*."""

    key: str  #: fnmatch pattern against the task / cache key
    kind: str  #: one of :data:`KINDS`
    attempts: Tuple[int, ...] = (1,)  #: 1-based attempt numbers that fire
    seconds: float = 3600.0  #: hang duration (``hang`` only)
    message: str = "injected fault"
    # poison-trace targeting: which element to overwrite, and with what.
    # Block/instruction indices are positions in the sorted trace (taken
    # modulo the trace's actual sizes, so "0" always hits something).
    # ``value=None`` means NaN — kept out of the field itself so specs
    # stay ``==``-comparable and the JSON stays standard (null, not the
    # nonstandard ``NaN`` literal).
    feature: str = "exec_count"
    block_index: int = 0
    instr_index: int = 0
    value: Optional[float] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")

    def matches(self, key: str, attempt: int) -> bool:
        return attempt in self.attempts and fnmatch.fnmatchcase(key, self.key)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs, JSON round-trippable."""

    specs: Tuple[FaultSpec, ...] = ()

    def spec_for(
        self, key: str, attempt: int, kinds: Tuple[str, ...] = KINDS
    ) -> Optional[FaultSpec]:
        """First spec matching ``(key, attempt)`` among ``kinds``."""
        for spec in self.specs:
            if spec.kind in kinds and spec.matches(key, attempt):
                return spec
        return None

    # ------------------------------------------------------------------
    # (de)serialization — the env-var / CI transport

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "key": s.key,
                    "kind": s.kind,
                    "attempts": list(s.attempts),
                    "seconds": s.seconds,
                    "message": s.message,
                    "feature": s.feature,
                    "block_index": s.block_index,
                    "instr_index": s.instr_index,
                    "value": s.value,
                }
                for s in self.specs
            ]
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw = json.loads(text)
        if not isinstance(raw, list):
            raise ValueError("fault plan JSON must be a list of specs")
        specs = []
        for entry in raw:
            specs.append(
                FaultSpec(
                    key=entry["key"],
                    kind=entry["kind"],
                    attempts=tuple(entry.get("attempts", (1,))),
                    seconds=float(entry.get("seconds", 3600.0)),
                    message=entry.get("message", "injected fault"),
                    feature=entry.get("feature", "exec_count"),
                    block_index=int(entry.get("block_index", 0)),
                    instr_index=int(entry.get("instr_index", 0)),
                    value=(
                        None if entry.get("value") is None
                        else float(entry["value"])
                    ),
                )
            )
        return cls(specs=tuple(specs))


#: process-global override installed by tests (inherited by forked workers)
_INSTALLED: Optional[FaultPlan] = None

#: per-key count of cache stores, so ``corrupt`` specs can address the
#: n-th store of a key; only advanced while a plan is active
_STORE_COUNTS: Dict[str, int] = defaultdict(int)

#: per-key count of serving batch executions, so serve specs can address
#: the n-th batch of a key; only advanced while a plan is active
_SERVE_COUNTS: Dict[str, int] = defaultdict(int)

#: per-digest count of registry model stores (corrupt-model-entry)
_MODEL_STORE_COUNTS: Dict[str, int] = defaultdict(int)

#: per-key count of DAG artifact commits (corrupt-node-artifact)
_DAG_STORE_COUNTS: Dict[str, int] = defaultdict(int)

#: per-key count of DAG lock acquisition tries (stale-lock)
_DAG_LOCK_COUNTS: Dict[str, int] = defaultdict(int)


@lru_cache(maxsize=8)
def _parse_env_plan(value: str) -> FaultPlan:
    if value.startswith("@"):
        with open(value[1:], "r", encoding="utf-8") as fh:
            value = fh.read()
    return FaultPlan.from_json(value)


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or clear, with ``None``) the process-global plan."""
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = plan
    _STORE_COUNTS.clear()
    _SERVE_COUNTS.clear()
    _MODEL_STORE_COUNTS.clear()
    _DAG_STORE_COUNTS.clear()
    _DAG_LOCK_COUNTS.clear()
    return previous


@contextmanager
def injected(plan: FaultPlan):
    """Scoped plan installation for tests."""
    previous = install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else the ``REPRO_FAULT_PLAN`` one, else None."""
    if _INSTALLED is not None:
        return _INSTALLED
    value = os.environ.get(ENV_FAULT_PLAN)
    if not value:
        return None
    return _parse_env_plan(value)


def apply_fault(key: str, attempt: int = 1) -> None:
    """Fire any execution fault planned for ``(key, attempt)``.

    Called at task entry by the executors (both the wrapped pool task
    and the serial loop), so injection is independent of where the task
    runs.  A no-op without an active plan.
    """
    plan = active_plan()
    if plan is None:
        return
    # node-crash is crash scoped to DAG node keys (``dag:<name>``): the
    # executor passes true attempt numbers here, so "crash the first
    # execution, succeed on retry" stays expressible across pool
    # rebuilds without cross-process counters
    spec = plan.spec_for(
        key, attempt, kinds=("raise", "hang", "crash", "node-crash")
    )
    if spec is None:
        return
    if spec.kind == "raise":
        raise TransientTaskError(spec.message, task_key=key, attempts=attempt)
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        return
    # crash / node-crash: kill the worker process outright so the parent
    # sees a BrokenProcessPool; serially, raise instead of killing the
    # caller
    if in_worker():
        os._exit(CRASH_EXIT_CODE)
    raise TaskCrashError(
        spec.message + " (serial crash)", task_key=key, attempts=attempt
    )


def poison_trace(trace, key: str, attempt: int = 1):
    """Apply every planned ``poison-trace`` fault to a collected trace.

    Called by the collection path right after a rank trace is produced,
    with the same task key the execution faults use
    (``collect:<app>:<n>:rank<r>``) — so one ``REPRO_FAULT_PLAN``
    drives both recovery *and* guardrail scenarios.  Mutates and
    returns the trace; a no-op without an active plan or matching spec.
    """
    plan = active_plan()
    if plan is None:
        return trace
    for spec in plan.specs:
        if spec.kind != "poison-trace" or not spec.matches(key, attempt):
            continue
        blocks = trace.sorted_blocks()
        if not blocks:
            continue
        block = blocks[spec.block_index % len(blocks)]
        if not block.instructions:
            continue
        ins = block.instructions[spec.instr_index % len(block.instructions)]
        value = float("nan") if spec.value is None else spec.value
        ins.features[trace.schema.index(spec.feature)] = value
    return trace


def check_corrupt(key: str) -> Optional[FaultSpec]:
    """Corruption spec for the n-th store of cache ``key``, if planned.

    The store counter only advances while a plan is active, so plans
    installed mid-run address stores from their own activation onward.
    """
    plan = active_plan()
    if plan is None:
        return None
    _STORE_COUNTS[key] += 1
    return plan.spec_for(key, _STORE_COUNTS[key], kinds=("corrupt",))


def apply_serve_fault(key: str) -> Optional[FaultSpec]:
    """Fire any serving fault planned for this batch-execution key.

    Called by the query engine at the top of every batch execution with
    the batch key (``serve:batch:<digest12>:<kind>``); the attempt
    number is the per-key batch count, so "fail the third batch" is one
    spec.  ``slow-predict`` sleeps in place and returns its spec (the
    engine tallies it); ``predict-raise`` raises a
    :class:`~repro.util.errors.ServeError` that fans out to the batch
    and feeds the model's circuit breaker.  A no-op without a plan.
    """
    plan = active_plan()
    if plan is None:
        return None
    _SERVE_COUNTS[key] += 1
    attempt = _SERVE_COUNTS[key]
    spec = plan.spec_for(key, attempt, kinds=("slow-predict", "predict-raise"))
    if spec is None:
        return None
    if spec.kind == "slow-predict":
        time.sleep(spec.seconds)
        return spec
    raise ServeError(spec.message, stage="serve", task_key=key, attempts=attempt)


def check_dag_corrupt(key: str) -> Optional[FaultSpec]:
    """Corruption spec for the n-th reuse validation of DAG node ``key``.

    Consumed by the DAG run engine right before it re-validates an
    *existing* artifact for reuse: the committed file is truncated in
    place, so the validation sees a digest mismatch, quarantines the
    file, and recomputes the node — bit-rot between runs, the sigcache
    corruption discipline at DAG-node granularity.
    """
    plan = active_plan()
    if plan is None:
        return None
    _DAG_STORE_COUNTS[key] += 1
    return plan.spec_for(
        key, _DAG_STORE_COUNTS[key], kinds=("corrupt-node-artifact",)
    )


def check_stale_lock(key: str) -> Optional[FaultSpec]:
    """Stale-lock spec for the n-th lock acquisition of DAG node ``key``.

    Consumed by the DAG lock path right before ``O_CREAT|O_EXCL``: when
    planned, the runner plants a lockfile whose mtime is already past
    the staleness horizon, forcing the takeover path that a crashed
    concurrent ``repro dag run`` would otherwise leave behind.
    """
    plan = active_plan()
    if plan is None:
        return None
    _DAG_LOCK_COUNTS[key] += 1
    return plan.spec_for(
        key, _DAG_LOCK_COUNTS[key], kinds=("stale-lock",)
    )


def check_model_corrupt(digest: str) -> Optional[FaultSpec]:
    """Corruption spec for the n-th registry store of ``digest``, if any.

    Consumed by :meth:`repro.serve.registry.ModelRegistry.put`, which
    truncates the file the spec's ``feature`` field names (``meta``,
    ``matrix``, or ``template``) right after the atomic store — the
    next *load* of that entry then trips quarantine + refit.
    """
    plan = active_plan()
    if plan is None:
        return None
    _MODEL_STORE_COUNTS[digest] += 1
    return plan.spec_for(
        digest, _MODEL_STORE_COUNTS[digest], kinds=("corrupt-model-entry",)
    )
