"""On-disk memoization of collected application signatures.

Collection is fully deterministic: the trace produced for ``(app,
n_ranks, hierarchy, CollectorConfig, rng root seed)`` never changes, so
re-collecting it — the dominant cost of every experiment and benchmark
— is pure waste.  This cache stores pickled
:class:`~repro.trace.signature.ApplicationSignature` objects keyed by a
SHA-256 digest of the full determinism surface plus a schema version
(bump :data:`SCHEMA_VERSION` whenever collection semantics change and
every old entry invalidates itself).

Keys are built from ``repr`` of frozen dataclasses, which is stable
across processes.  Anything whose repr embeds a memory address (the
``object`` default) is *uncacheable*: the cache refuses to key it
rather than silently never hitting, and counts the refusal in
:class:`CacheStats`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.util.rng import DEFAULT_ROOT_SEED

#: bump when collection output semantics change; invalidates all entries
SCHEMA_VERSION = 1

#: environment override for the cache directory
ENV_CACHE_ROOT = "REPRO_SIGNATURE_CACHE"


def _stable_token(obj) -> Optional[str]:
    """``repr(obj)`` when stable across processes, else ``None``."""
    text = repr(obj)
    if " at 0x" in text:
        return None
    return text


def app_token(app) -> Optional[str]:
    """Canonical description of an app proxy's identity.

    App proxies carry their entire configuration in instance attributes
    (frozen params dataclass + scaling mode), so the class name plus
    sorted attribute reprs pin down collection output exactly.
    """
    parts = [type(app).__name__, getattr(app, "name", "?")]
    for attr, value in sorted(vars(app).items()):
        token = _stable_token(value)
        if token is None:
            return None
        parts.append(f"{attr}={token}")
    return ";".join(parts)


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stores={self.stores} uncacheable={self.uncacheable}"
        )


class SignatureCache:
    """Directory of pickled signatures, one file per key.

    The default root is ``$REPRO_SIGNATURE_CACHE`` or
    ``~/.cache/repro/signatures``.  Writes are atomic (temp file +
    rename), so concurrent processes can share a cache directory; a
    racing double-store just writes the same bytes twice.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            root = os.environ.get(ENV_CACHE_ROOT) or (
                Path.home() / ".cache" / "repro" / "signatures"
            )
        self.root = Path(root)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # keying

    def key_for(
        self,
        app,
        n_ranks: int,
        hierarchy,
        settings,
        *,
        root_seed: int = DEFAULT_ROOT_SEED,
    ) -> Optional[str]:
        """Digest of the collection determinism surface, or ``None``.

        ``None`` means some component has no stable identity (e.g. an
        ad-hoc app object) and the caller must collect uncached.
        """
        app_tok = app_token(app)
        hier_tok = _stable_token(hierarchy)
        ranks_tok = _stable_token(settings.ranks)
        coll_tok = _stable_token(settings.collector)
        if None in (app_tok, hier_tok, ranks_tok, coll_tok):
            self.stats.uncacheable += 1
            return None
        blob = "\n".join(
            [
                f"schema={SCHEMA_VERSION}",
                f"app={app_tok}",
                f"n_ranks={n_ranks}",
                f"hierarchy={hier_tok}",
                f"ranks={ranks_tok}",
                f"collector={coll_tok}",
                f"root_seed={root_seed}",
            ]
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # ------------------------------------------------------------------
    # storage

    def get(self, key: Optional[str]):
        """Cached signature for ``key``, or ``None`` on any miss."""
        if key is None:
            return None
        try:
            with open(self._path(key), "rb") as fh:
                sig = pickle.load(fh)
        except Exception:
            # a cache entry is disposable: any unreadable/corrupt file —
            # pickle raises nearly arbitrary exceptions on garbage bytes
            # (e.g. ValueError from a truncated opcode argument) — is a
            # miss, never an error
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return sig

    def put(self, key: Optional[str], signature) -> None:
        """Store ``signature`` under ``key`` atomically (no-op if None)."""
        if key is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(signature, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
