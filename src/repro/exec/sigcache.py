"""On-disk memoization of collected application signatures.

Collection is fully deterministic: the trace produced for ``(app,
n_ranks, hierarchy, CollectorConfig, rng root seed)`` never changes, so
re-collecting it — the dominant cost of every experiment and benchmark
— is pure waste.  This cache stores pickled
:class:`~repro.trace.signature.ApplicationSignature` objects keyed by a
SHA-256 digest of the full determinism surface plus a schema version
(bump :data:`SCHEMA_VERSION` whenever collection semantics change and
every old entry invalidates itself).

Keys are built from ``repr`` of frozen dataclasses, which is stable
across processes.  Anything whose repr embeds a memory address (the
``object`` default) is *uncacheable*: the cache refuses to key it
rather than silently never hitting, and counts the refusal in
:class:`CacheStats`.

Entries are **corruption-safe**: each file frames the pickled payload
with a magic header and a SHA-256 content digest, verified on every
read.  A truncated, bit-flipped, garbage, or pre-digest (legacy) file
is never an error and never deleted silently — it is moved to a
``quarantine/`` subdirectory for post-mortem, counted in
``CacheStats.corrupt``, and reported to the caller as an ordinary miss,
so pipeline code recollects and repairs the entry automatically.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.exec import faults
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.util.errors import CacheCorruptionError
from repro.util.rng import DEFAULT_ROOT_SEED

log = get_logger("exec.sigcache")

#: bump when collection output semantics change; invalidates all entries
#: (2: digest-framed entry format)
SCHEMA_VERSION = 2

#: environment override for the cache directory
ENV_CACHE_ROOT = "REPRO_SIGNATURE_CACHE"

#: entry framing: magic, 64 hex digest chars, newline, pickled payload
ENTRY_MAGIC = b"repro-sig\x00v2\n"

#: subdirectory corrupt entries are moved to (never silently deleted)
QUARANTINE_DIR = "quarantine"


def _stable_token(obj) -> Optional[str]:
    """``repr(obj)`` when stable across processes, else ``None``."""
    text = repr(obj)
    if " at 0x" in text:
        return None
    return text


def app_token(app) -> Optional[str]:
    """Canonical description of an app proxy's identity.

    App proxies carry their entire configuration in instance attributes
    (frozen params dataclass + scaling mode), so the class name plus
    sorted attribute reprs pin down collection output exactly.
    """
    parts = [type(app).__name__, getattr(app, "name", "?")]
    for attr, value in sorted(vars(app).items()):
        token = _stable_token(value)
        if token is None:
            return None
        parts.append(f"{attr}={token}")
    return ";".join(parts)


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime.

    A thin per-instance view: every increment goes through :meth:`bump`,
    which mirrors into the global metrics registry as ``cache.<name>``,
    so the ``--metrics-out`` export always agrees with this summary.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0
    corrupt: int = 0

    COUNTER_FIELDS = ("hits", "misses", "stores", "uncacheable", "corrupt")

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"cache.{name}", n)

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"stores={self.stores} uncacheable={self.uncacheable} "
            f"corrupt={self.corrupt}"
        )


class SignatureCache:
    """Directory of pickled signatures, one file per key.

    The default root is ``$REPRO_SIGNATURE_CACHE`` or
    ``~/.cache/repro/signatures``.  Writes are atomic (temp file +
    rename), so concurrent processes can share a cache directory; a
    racing double-store just writes the same bytes twice.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        if root is None:
            root = os.environ.get(ENV_CACHE_ROOT) or (
                Path.home() / ".cache" / "repro" / "signatures"
            )
        self.root = Path(root)
        self.stats = CacheStats()
        self._report = None

    def bind_report(self, report) -> None:
        """Mirror corruption events into a resilience ``RunReport``."""
        self._report = report

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # ------------------------------------------------------------------
    # keying

    def key_for(
        self,
        app,
        n_ranks: int,
        hierarchy,
        settings,
        *,
        root_seed: int = DEFAULT_ROOT_SEED,
    ) -> Optional[str]:
        """Digest of the collection determinism surface, or ``None``.

        ``None`` means some component has no stable identity (e.g. an
        ad-hoc app object) and the caller must collect uncached.
        """
        app_tok = app_token(app)
        hier_tok = _stable_token(hierarchy)
        ranks_tok = _stable_token(settings.ranks)
        coll_tok = _stable_token(settings.collector)
        if None in (app_tok, hier_tok, ranks_tok, coll_tok):
            self.stats.bump("uncacheable")
            return None
        blob = "\n".join(
            [
                f"schema={SCHEMA_VERSION}",
                f"app={app_tok}",
                f"n_ranks={n_ranks}",
                f"hierarchy={hier_tok}",
                f"ranks={ranks_tok}",
                f"collector={coll_tok}",
                f"root_seed={root_seed}",
            ]
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # ------------------------------------------------------------------
    # storage

    def _read_verified(self, path: Path):
        """Unpickle a digest-framed entry, or raise CacheCorruptionError.

        Every failure mode maps to corruption: missing/short header,
        wrong magic (including pre-digest legacy entries), digest
        mismatch on truncated or bit-flipped payloads, and unpicklable
        payloads (``pickle`` raises nearly arbitrary exceptions on
        garbage bytes — ``UnpicklingError``, ``EOFError``,
        ``AttributeError`` for renamed classes, ``ValueError`` from a
        truncated opcode argument, ...).
        """
        with open(path, "rb") as fh:
            blob = fh.read()
        header_len = len(ENTRY_MAGIC) + 64 + 1
        if len(blob) < header_len or not blob.startswith(ENTRY_MAGIC):
            raise CacheCorruptionError(
                "missing or foreign entry header", stage="cache"
            )
        digest = blob[len(ENTRY_MAGIC):len(ENTRY_MAGIC) + 64]
        payload = blob[header_len:]
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            raise CacheCorruptionError("content digest mismatch", stage="cache")
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise CacheCorruptionError(
                f"undigestible payload: {type(exc).__name__}", stage="cache"
            )

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a corrupt entry aside (never delete it) and count it."""
        self.stats.bump("corrupt")
        log.warning("quarantining cache entry %s: %s", key, reason)
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(self._path(key), self.quarantine_root / f"{key}.pkl")
        except OSError:
            # the entry raced away or the move failed; it stays counted
            pass
        if self._report is not None:
            self._report.bump("cache_corruptions")
            self._report.quarantined.append(key)
            self._report.record(f"quarantined cache entry {key}: {reason}")

    def get(self, key: Optional[str]):
        """Cached signature for ``key``, or ``None`` on any miss.

        Corrupt entries (failed digest, unpicklable, legacy format) are
        quarantined and reported as misses — callers never see an
        exception, they just recollect.
        """
        if key is None:
            return None
        path = self._path(key)
        try:
            sig = self._read_verified(path)
        except CacheCorruptionError as exc:
            if path.exists():
                self._quarantine(key, str(exc))
            self.stats.bump("misses")
            return None
        except OSError:
            # plain miss: no entry (or unreadable directory)
            self.stats.bump("misses")
            return None
        self.stats.bump("hits")
        return sig

    def put(self, key: Optional[str], signature) -> None:
        """Store ``signature`` under ``key`` atomically (no-op if None)."""
        if key is None:
            return
        payload = pickle.dumps(signature, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(ENTRY_MAGIC + digest + b"\n" + payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.bump("stores")
        spec = faults.check_corrupt(key)
        if spec is not None:
            # injected corruption: truncate the just-published entry so
            # the next read exercises the quarantine path
            entry = self._path(key)
            entry.write_bytes(entry.read_bytes()[: max(1, len(payload) // 2)])
