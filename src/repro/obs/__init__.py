"""Pipeline-wide observability: logging, tracing, metrics, telemetry.

Five small, dependency-free layers every pipeline stage reports through:

- :mod:`repro.obs.log` — structured, rate-limit-safe logging (human or
  JSONL) on stdlib ``logging``;
- :mod:`repro.obs.trace` — nested wall-clock spans exported as
  Chrome-trace JSON, propagated across process-pool boundaries;
- :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and histogram timers, exported as one JSON document;
- :mod:`repro.obs.telemetry` — bounded streaming histograms, the live
  flight-recorder sampler for the serving engine (per-interval JSONL
  deltas + Prometheus text exposition), read by ``repro stats``;
- :mod:`repro.obs.manifest` — run manifests tying every output artifact
  (by content digest) to the configuration that produced it.

All of it is observability-only: no RNG use, no influence on numeric
results, near-zero cost when disabled.
"""

from __future__ import annotations

from repro.obs.log import configure as configure_logging, get_logger
from repro.obs.metrics import REGISTRY as metrics
from repro.obs.trace import span, traced

__all__ = [
    "configure_logging",
    "get_logger",
    "metrics",
    "span",
    "traced",
    "worker_init",
]


def worker_init() -> None:
    """Reset per-process observability state inside a fresh pool worker."""
    from repro.obs import log, trace

    log.worker_init()
    trace.worker_init()
    metrics.reset()
