"""Live serving telemetry: streaming histograms and a flight recorder.

The batch pipeline's observability (:mod:`repro.obs.metrics`,
:mod:`repro.obs.trace`) summarizes once, at exit.  A long-running
``repro serve`` process needs the opposite: bounded-memory aggregates
that can be sampled *while the process runs*.  This module provides the
three pieces:

- :class:`StreamingHistogram` — a fixed log2-bucket histogram (each
  octave split into :data:`SUBBUCKETS` linear sub-buckets, sparse dict
  storage).  O(1) memory regardless of stream length, exact ``count`` /
  ``sum`` / ``min`` / ``max``, mergeable across processes, and
  bucket-interpolated quantiles with bounded relative error
  (about ``1 / SUBBUCKETS``).  :class:`repro.obs.metrics.TimerState`
  backs every registry timer with one of these.
- :class:`TelemetrySampler` — a periodic asyncio task that snapshots
  the metrics registry (and, when attached, a
  :class:`~repro.serve.engine.QueryEngine`) every interval and appends
  one JSON line per interval to a **flight recorder** file.  Counter
  and histogram fields are *per-interval deltas*: integer counters
  telescope, so summing a field over all records reproduces the
  end-of-run total exactly.  Each tick also probes event-loop lag
  (scheduled-vs-actual wake time) and drains a top-N
  :class:`SlowQueryLog`.  A final record is written on :meth:`stop`,
  after the engine has drained, so the recorder always accounts for
  every query.
- :func:`write_prometheus` — text-exposition rendering of the same
  registry state (cumulative, not deltas), atomically replaced each
  interval so a scraper never reads a torn file.

Reading the recorder back (:func:`read_flight_records`) tolerates a
torn final line — the file may be read mid-run or after a kill, the
same tolerance the pipeline journal gives its JSONL.  Everything here
is observability-only: no RNG, no influence on any served answer, and
clock reads are injectable so snapshot tests run on a fake clock.
"""

from __future__ import annotations

import heapq
import json
import math
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.util.errors import ReproError

#: flight-recorder format version, stamped into every record
TELEMETRY_SCHEMA_VERSION = 1

#: linear sub-buckets per power-of-two octave; the max relative width of
#: one bucket — and so the quantile interpolation error bound — is 1/16
SUBBUCKETS = 16

#: smallest/largest representable octave: 2^-40 s (~1 ps) .. 2^24 s
#: (~194 days).  Values below fold into the zero bucket, values above
#: clamp into the top bucket; both remain exactly counted and summed.
MIN_EXP = -40
MAX_EXP = 24

_N_BUCKETS = (MAX_EXP - MIN_EXP) * SUBBUCKETS


def bucket_index(value: float) -> int:
    """Map one observation to its bucket: 0 is the zero bucket, then
    ``1 + (octave - MIN_EXP) * SUBBUCKETS + sub`` for positive values."""
    if value <= 0.0:
        return 0
    m, e = math.frexp(value)  # value = m * 2**e with m in [0.5, 1)
    e -= 1  # value = (2m) * 2**e with 2m in [1, 2)
    if e < MIN_EXP:
        return 0
    if e >= MAX_EXP:
        return _N_BUCKETS  # the last real bucket
    sub = int((2.0 * m - 1.0) * SUBBUCKETS)
    if sub >= SUBBUCKETS:  # float edge: m rounded up to 1.0
        sub = SUBBUCKETS - 1
    return 1 + (e - MIN_EXP) * SUBBUCKETS + sub


def bucket_bounds(index: int) -> tuple:
    """(lower, upper) value bounds of one bucket index."""
    if index <= 0:
        return 0.0, 2.0 ** MIN_EXP
    index -= 1
    e = MIN_EXP + index // SUBBUCKETS
    sub = index % SUBBUCKETS
    scale = 2.0 ** e
    return (
        scale * (1.0 + sub / SUBBUCKETS),
        scale * (1.0 + (sub + 1) / SUBBUCKETS),
    )


class StreamingHistogram:
    """Bounded log2-bucket histogram: O(1) memory, mergeable, exact tails.

    ``count``/``total``/``min_value``/``max_value`` are exact;
    quantiles interpolate linearly inside the covering bucket and are
    clamped to the observed range, so the relative error is bounded by
    the bucket width (about ``1 / SUBBUCKETS``) and p0/p100 are exact.
    """

    __slots__ = ("buckets", "count", "total", "min_value", "max_value")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile (q in [0, 1]); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        q = min(max(float(q), 0.0), 1.0)
        if q == 0.0:
            return self.min_value
        if q == 1.0:
            return self.max_value
        rank = q * (self.count - 1)
        cum = 0
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if rank < cum + n:
                lo, hi = bucket_bounds(idx)
                lo = max(lo, self.min_value)
                hi = min(hi, self.max_value)
                frac = (rank - cum + 0.5) / n
                value = lo + frac * (hi - lo)
                return min(max(value, self.min_value), self.max_value)
            cum += n
        return self.max_value

    def merge(self, other: "StreamingHistogram") -> None:
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def to_dict(self) -> dict:
        """JSON form; bucket keys become strings, empty extrema None."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value if self.count else None,
            "max": self.max_value if self.count else None,
            "buckets": {
                str(idx): n for idx, n in sorted(self.buckets.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "StreamingHistogram":
        hist = cls()
        hist.count = int(doc["count"])
        hist.total = float(doc["sum"])
        if doc.get("min") is not None:
            hist.min_value = float(doc["min"])
        if doc.get("max") is not None:
            hist.max_value = float(doc["max"])
        hist.buckets = {
            int(idx): int(n) for idx, n in doc.get("buckets", {}).items()
        }
        return hist


def hist_delta(cur: dict, prev: Optional[dict]) -> Optional[dict]:
    """Per-interval histogram delta between two :meth:`to_dict` snapshots.

    Bucket counts and ``count``/``sum`` subtract (they telescope back to
    the cumulative totals); ``min``/``max`` stay cumulative — they are
    clamps for interval quantile reconstruction, not interval extrema.
    Returns ``None`` when nothing was observed in the interval.
    """
    if prev is None:
        return cur if cur["count"] else None
    dcount = cur["count"] - prev["count"]
    if dcount <= 0:
        return None
    buckets = {}
    prev_buckets = prev.get("buckets", {})
    for idx, n in cur.get("buckets", {}).items():
        dn = n - prev_buckets.get(idx, 0)
        if dn:
            buckets[idx] = dn
    return {
        "count": dcount,
        "sum": cur["sum"] - prev["sum"],
        "min": cur["min"],
        "max": cur["max"],
        "buckets": buckets,
    }


class SlowQueryLog:
    """Top-N slowest queries since the last drain (bounded min-heap)."""

    def __init__(self, n: int = 8):
        self.n = int(n)
        self._heap: List[tuple] = []
        self._tick = 0

    def record(self, latency_s: float, **info: Any) -> None:
        if self.n <= 0:
            return
        item = (float(latency_s), self._tick, info)
        self._tick += 1
        if len(self._heap) < self.n:
            heapq.heappush(self._heap, item)
        elif item[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, item)

    def drain(self) -> List[dict]:
        """Slowest-first entries, then reset for the next interval."""
        items = sorted(self._heap, reverse=True)
        self._heap = []
        return [
            {"latency_ms": round(latency * 1e3, 3), **info}
            for latency, _, info in items
        ]


@dataclass
class TelemetryConfig:
    """Sampler knobs: tick interval and artifact destinations."""

    interval_s: float = 1.0
    out: Optional[Union[str, Path]] = None  #: flight-recorder JSONL path
    prom_out: Optional[Union[str, Path]] = None  #: Prometheus text path
    slow_queries: int = 8  #: top-N slow-query log entries per interval

    def __post_init__(self):
        if not self.interval_s > 0:
            raise ReproError(
                f"telemetry interval must be positive, got "
                f"{self.interval_s}",
                stage="telemetry",
            )
        if self.slow_queries < 0:
            raise ReproError(
                f"slow-query log size must be >= 0, got "
                f"{self.slow_queries}",
                stage="telemetry",
            )


class TelemetrySampler:
    """Periodic registry/engine snapshots to a JSONL flight recorder.

    Every tick emits one record of *per-interval deltas* (counters and
    histograms) plus current gauges, breaker states, the breaker
    transitions that happened inside the interval, event-loop lag, and
    the interval's slowest queries.  Counter deltas telescope: summing
    any counter field across all records (including the final record
    written by :meth:`stop`) equals its end-of-run registry value
    exactly.

    ``clock``/``wall_clock`` are injectable so tests drive a fake
    clock; :meth:`sample` is callable directly for synchronous use.
    """

    def __init__(
        self,
        engine: Any = None,
        config: Optional[TelemetryConfig] = None,
        *,
        registry: Any = None,
        clock=time.perf_counter,
        wall_clock=time.time,
    ):
        if registry is None:
            from repro.obs.metrics import REGISTRY as registry
        self.engine = engine
        self.config = config or TelemetryConfig()
        self.registry = registry
        self.slow = SlowQueryLog(self.config.slow_queries)
        self.records_written = 0
        self._clock = clock
        self._wall = wall_clock
        self._seq = 0
        self._t0: Optional[float] = None
        self._last: Optional[float] = None
        self._prev_counters: Dict[str, Union[int, float]] = {}
        self._prev_hists: Dict[str, dict] = {}
        self._prev_transitions = 0
        self._fh = None
        self._task = None
        self._stop_event = None

    # -- engine hook ----------------------------------------------------

    def record_query(self, q: Any, latency_s: float) -> None:
        """Called by the engine per answered query (only while attached)."""
        self.slow.record(
            latency_s,
            tenant=q.tenant,
            target=int(q.target),
            kind=q.kind,
            model=(q.model or "")[:12],
        )

    # -- sampling -------------------------------------------------------

    def sample(
        self, *, final: bool = False, loop_lag_s: Optional[float] = None
    ) -> dict:
        """Take one snapshot; write it to the recorder; return the record."""
        registry = self.registry
        now = self._clock()
        if self._t0 is None:
            self._t0 = now
        last = self._last if self._last is not None else self._t0
        record: Dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "seq": self._seq,
            "t_s": round(now - self._t0, 6),
            "wall_time": self._wall(),
            "interval_s": round(now - last, 6),
            "final": bool(final),
        }
        if loop_lag_s is not None:
            record["loop_lag_s"] = round(loop_lag_s, 6)
            registry.gauge("serve.loop_lag_s").set(loop_lag_s)

        counters: Dict[str, Union[int, float]] = {}
        for name in sorted(registry.counters):
            delta = registry.counters[name] - self._prev_counters.get(name, 0)
            if delta:
                counters[name] = delta
        self._prev_counters = dict(registry.counters)
        record["counters"] = counters

        record["gauges"] = {
            name: registry.gauges[name] for name in sorted(registry.gauges)
        }

        hists: Dict[str, dict] = {}
        new_prev: Dict[str, dict] = {}
        for name in sorted(registry.timers):
            hist = getattr(registry.timers[name], "hist", None)
            if hist is None:  # a foreign/legacy timer shape: skip
                continue
            cur = hist.to_dict()
            new_prev[name] = cur
            delta = hist_delta(cur, self._prev_hists.get(name))
            if delta is not None:
                hists[name] = delta
        self._prev_hists = new_prev
        record["hists"] = hists

        if self.engine is not None:
            record["breakers"] = self.engine.breaker_states()
            transitions = self.engine.report.transitions
            record["transitions"] = list(
                transitions[self._prev_transitions:]
            )
            self._prev_transitions = len(transitions)
        slow = self.slow.drain()
        if slow:
            record["slow_queries"] = slow

        if self._fh is None and self.config.out is not None:
            self._fh = self._open(self.config.out)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
            self.records_written += 1
        if self.config.prom_out is not None:
            write_prometheus(self.config.prom_out, registry)

        self._seq += 1
        self._last = now
        return record

    @staticmethod
    def _open(path: Union[str, Path]):
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        return path.open("w", encoding="utf-8")

    # -- asyncio lifecycle ----------------------------------------------

    async def start(self) -> None:
        """Attach to the engine and start the periodic sampling task."""
        import asyncio

        if self._task is not None:
            return
        if self.engine is not None:
            self.engine.telemetry = self
        if self._t0 is None:
            self._t0 = self._clock()
        self._stop_event = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="serve-telemetry"
        )

    async def _run(self) -> None:
        import asyncio

        interval = self.config.interval_s
        target = self._clock() + interval
        while True:
            delay = target - self._clock()
            if delay > 0:
                try:
                    await asyncio.wait_for(self._stop_event.wait(), delay)
                except asyncio.TimeoutError:
                    pass
            if self._stop_event.is_set():
                return
            # the loop-lag probe: how late did this tick actually fire?
            now = self._clock()
            self.sample(loop_lag_s=max(0.0, now - target))
            target = self._clock() + interval

    async def stop(self) -> None:
        """Stop ticking and write the final record (call after the
        engine has drained, so the remainder interval closes the books)."""
        if self._task is not None:
            self._stop_event.set()
            await self._task
            self._task = None
        if (
            self.engine is not None
            and getattr(self.engine, "telemetry", None) is self
        ):
            self.engine.telemetry = None
        self.sample(final=True)
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# -- flight-recorder reading -------------------------------------------


def read_flight_records(
    path: Union[str, Path], *, strict: bool = False
) -> List[dict]:
    """Load a flight-recorder JSONL file, tolerating a torn final line.

    The recorder may be read mid-run or after a kill: a final line cut
    off mid-write is silently dropped (the journal's tolerance).  A
    malformed line anywhere *else* is corruption, not a torn tail, and
    always raises; ``strict=True`` makes the tail strict too.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(
            f"telemetry file not found: {path}", stage="telemetry"
        )
    lines = path.read_text(encoding="utf-8").splitlines()
    records: List[dict] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if i == len(lines) - 1 and not strict:
                break  # torn tail: a live or killed writer
            raise ReproError(
                f"telemetry record on line {i + 1} of {path} is not "
                f"valid JSON",
                stage="telemetry",
            ) from None
        if isinstance(record, dict):
            records.append(record)
    return records


def sum_counters(records: List[dict]) -> Dict[str, Union[int, float]]:
    """Telescoped totals: per-interval counter deltas summed back up."""
    totals: Dict[str, Union[int, float]] = {}
    for record in records:
        for name, delta in record.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + delta
    return totals


def merged_hist(records: List[dict], name: str) -> StreamingHistogram:
    """Fold one timer's per-interval deltas back into one histogram."""
    out = StreamingHistogram()
    for record in records:
        doc = record.get("hists", {}).get(name)
        if doc:
            out.merge(StreamingHistogram.from_dict(doc))
    return out


# -- Prometheus text exposition ----------------------------------------

_PROM_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: dotted-name prefixes whose last segment is a label, not metric name
_LABELED = (
    ("serve.queue_depth.", "repro_serve_queue_depth", "tenant"),
    ("serve.inflight.", "repro_serve_inflight", "tenant"),
    ("serve.breaker.", "repro_serve_breaker_state", "model"),
)


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_OK.sub("_", name)


def _prom_split(name: str) -> tuple:
    """(family, labels) for one dotted metric name."""
    for prefix, family, label in _LABELED:
        if name.startswith(prefix) and len(name) > len(prefix):
            return family, {label: name[len(prefix):]}
    if name.startswith("serve.tenant."):
        parts = name.split(".")
        if len(parts) == 4:
            family = f"repro_serve_tenant_{_PROM_OK.sub('_', parts[2])}"
            return family, {"tenant": parts[3]}
    return _prom_name(name), {}


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: Any = None) -> str:
    """Registry state as Prometheus text exposition (cumulative)."""
    if registry is None:
        from repro.obs.metrics import REGISTRY as registry
    families: Dict[str, dict] = {}

    def emit(family: str, kind: str, labels: Dict[str, str], value) -> None:
        fam = families.setdefault(family, {"type": kind, "samples": []})
        fam["samples"].append((_prom_labels(labels), value))

    for name in sorted(registry.counters):
        family, labels = _prom_split(name)
        emit(family + "_total", "counter", labels, registry.counters[name])
    for name in sorted(registry.gauges):
        family, labels = _prom_split(name)
        emit(family, "gauge", labels, registry.gauges[name])

    lines: List[str] = []
    for family in sorted(families):
        fam = families[family]
        lines.append(f"# TYPE {family} {fam['type']}")
        for labels, value in fam["samples"]:
            lines.append(f"{family}{labels} {_prom_value(value)}")

    for name in sorted(registry.timers):
        hist = getattr(registry.timers[name], "hist", None)
        if hist is None:
            continue
        base = _prom_name(name)
        if base.endswith("_s"):
            base = base[:-2] + "_seconds"
        lines.append(f"# TYPE {base} histogram")
        cum = 0
        for idx in sorted(hist.buckets):
            cum += hist.buckets[idx]
            upper = bucket_bounds(idx)[1]
            lines.append(
                f'{base}_bucket{{le="{format(upper, ".9g")}"}} {cum}'
            )
        lines.append(f'{base}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{base}_sum {_prom_value(hist.total)}")
        lines.append(f"{base}_count {hist.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: Union[str, Path], registry: Any = None) -> str:
    """Atomically replace ``path`` with the current exposition text."""
    from repro.util.atomic import atomic_write_text

    text = render_prometheus(registry)
    atomic_write_text(path, text)
    return text
