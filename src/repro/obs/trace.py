"""Lightweight span tracer producing Chrome-trace-format JSON.

``span("collect.rank", app=..., rank=...)`` opens a nested wall-clock
span; when tracing is enabled (``--trace-out trace.json`` or
``$REPRO_TRACE=1``) every closed span becomes one complete ("ph": "X")
event in a Chrome trace file loadable by ``chrome://tracing`` and
Perfetto.  When tracing is disabled, :func:`span` returns a shared
no-op context manager, so instrumented code pays one module-global read
per call — nothing else.

Span names are dotted ``stage.detail`` strings (``collect.rank``,
``fit.series``, ``replay.job``); the first component is the pipeline
stage, which :meth:`Tracer.stage_durations` aggregates for the run
manifest.

**Cross-process propagation.**  Pool workers cannot append to the
parent's tracer, so completed worker spans ship back *with the task
result*: when tracing is active, :mod:`repro.exec.pool` and
:mod:`repro.exec.resilience` route worker calls through
:func:`call_shipped`, which wraps the return value in a
:class:`TaskEnvelope` carrying the worker's drained spans (and metric
deltas); the parent unwraps with :func:`unwrap` and absorbs them.
Timestamps come from ``time.perf_counter_ns`` — ``CLOCK_MONOTONIC`` on
Linux, shared across forked processes — so parent and worker spans sit
on one consistent timeline.

Tracing is observability-only by construction: it reads the clock and
appends to a list; it never touches an RNG stream or any pipeline
value, so enabling it cannot change numeric outputs.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.obs.metrics import REGISTRY

#: environment flag that tells (possibly spawned) workers to collect
ENV_TRACE = "REPRO_TRACE"

#: mirrors repro.exec.pool._WORKER_ENV (re-declared here: the pool
#: imports this module, so importing back would be a cycle)
_WORKER_ENV = "REPRO_EXEC_WORKER"

_local = threading.local()


def _stack() -> list:
    try:
        return _local.stack
    except AttributeError:
        _local.stack = []
        return _local.stack


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class Tracer:
    """An append-only buffer of completed Chrome-trace events."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    # -- recording ------------------------------------------------------

    def record(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        args: Optional[dict] = None,
        depth: int = 0,
    ) -> None:
        event = {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": start_ns / 1000.0,  # Chrome trace wants microseconds
            "dur": max(end_ns - start_ns, 0) / 1000.0,
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "args": {"depth": depth, **(args or {})},
        }
        self.events.append(event)

    def absorb(self, events: List[dict]) -> None:
        """Merge completed events shipped back from a worker."""
        self.events.extend(events)

    def drain(self) -> List[dict]:
        """Take (and clear) the buffered events — the shipping primitive."""
        events, self.events = self.events, []
        return events

    # -- aggregation / export -------------------------------------------

    def stage_durations(self) -> Dict[str, dict]:
        """Per-span-name ``{count, total_s}`` aggregates (manifest food).

        Keyed by the full dotted span name, so nested spans (which would
        double-count a stage if summed by prefix) stay separate entries.
        """
        out: Dict[str, dict] = {}
        for event in self.events:
            entry = out.setdefault(event["name"], {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += event["dur"] / 1e6
        for entry in out.values():
            entry["total_s"] = round(entry["total_s"], 9)
        return dict(sorted(out.items()))

    def stages(self) -> List[str]:
        """Distinct pipeline stages (first name component) observed."""
        return sorted({e["name"].split(".", 1)[0] for e in self.events})

    def to_chrome(self) -> dict:
        """The Chrome trace document (timestamps rebased to t=0)."""
        base = min((e["ts"] for e in self.events), default=0.0)
        events = []
        for event in self.events:
            rebased = dict(event)
            rebased["ts"] = round(event["ts"] - base, 3)
            rebased["dur"] = round(event["dur"], 3)
            events.append(rebased)
        events.sort(key=lambda e: (e["ts"], -e["dur"]))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }

    def export_chrome(self, path: Union[str, Path]) -> dict:
        doc = self.to_chrome()
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=1) + "\n")
        return doc


#: the process-global tracer; ``None`` means tracing is off
_TRACER: Optional[Tracer] = None


def enable() -> Tracer:
    """Turn span collection on (idempotent); returns the tracer.

    Also sets ``$REPRO_TRACE`` so pool workers — forked or spawned —
    know to collect and ship their spans.
    """
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer()
    os.environ[ENV_TRACE] = "1"
    return _TRACER


def disable() -> None:
    global _TRACER
    _TRACER = None
    os.environ.pop(ENV_TRACE, None)


def is_enabled() -> bool:
    return _TRACER is not None


def current() -> Optional[Tracer]:
    return _TRACER


def worker_init() -> None:
    """Reset tracing state inside a fresh pool worker.

    A forked worker inherits the parent's tracer *with the parent's
    buffered events*; shipping those back verbatim would duplicate
    them.  Workers therefore always start with an empty tracer (enabled
    when ``$REPRO_TRACE`` says so) and an empty span stack.
    """
    global _TRACER
    _local.stack = []
    _TRACER = Tracer() if os.environ.get(ENV_TRACE) == "1" else None


# ----------------------------------------------------------------------
# the span API


class _NullSpan:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("tracer", "name", "args", "start_ns", "depth")

    def __init__(self, tracer: Tracer, name: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        stack = _stack()
        self.depth = len(stack)
        stack.append(self.name)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        stack = _stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        args = {k: _jsonable(v) for k, v in self.args.items()}
        if exc_type is not None:
            args["error"] = exc_type.__name__
        self.tracer.record(
            self.name, self.start_ns, end_ns, args, depth=self.depth
        )
        return False  # never swallow the exception


def span(name: str, /, **args):
    """Context manager timing one named span (no-op when tracing is off).

    ``name`` is positional-only so span args may themselves be called
    ``name`` (e.g. ``span("collect.rank", name=app.name)``).
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, args)


def active_spans() -> List[str]:
    """Names of the spans currently open on this thread (outermost first)."""
    return list(_stack())


def traced(name: Optional[str] = None, **attrs) -> Callable:
    """Decorator form of :func:`span`; defaults to the function name."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# worker -> parent propagation


class TaskEnvelope:
    """A worker task's result plus its observability payload."""

    __slots__ = ("value", "events", "metrics")

    def __init__(self, value, events: List[dict], metrics: dict):
        self.value = value
        self.events = events
        self.metrics = metrics


def ship_from_worker() -> bool:
    """True when a pooled call should wrap its result in an envelope."""
    return _TRACER is not None and os.environ.get(_WORKER_ENV) == "1"


def call_shipped(fn: Callable, key: str, args: tuple):
    """Run ``fn(*args)`` in a worker under a task span, shipping spans.

    Called in the *worker* process; the parent recovers the plain value
    (and absorbs the payload) with :func:`unwrap`.  Outside a worker, or
    with tracing off, this is a plain call — spans land directly in the
    calling process's tracer.
    """
    from repro.obs import log as obs_log

    obs_log.set_task_context(task=key)
    try:
        if not ship_from_worker():
            with span("exec.task", key=key):
                return fn(*args)
        tracer = _TRACER
        with span("exec.task", key=key):
            value = fn(*args)
        return TaskEnvelope(value, tracer.drain(), REGISTRY.drain())
    finally:
        obs_log.clear_task_context()


def unwrap(value):
    """Recover a task result, absorbing any shipped worker payload."""
    if isinstance(value, TaskEnvelope):
        if _TRACER is not None:
            _TRACER.absorb(value.events)
        REGISTRY.merge(value.metrics)
        return value.value
    return value
