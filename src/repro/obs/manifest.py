"""Run manifests: every artifact traceable to the run that produced it.

A manifest is one JSON document written next to a command's outputs
(``run_manifest.json``) recording *what produced what*: the git SHA and
python/platform of the build, the full CLI configuration, the RNG root
seed, the app/machine identities, per-stage wall-clock durations, the
cache and resilience tallies, and a SHA-256 digest of every output
artifact.

Digests are **content** digests: ``.npz`` outputs are hashed member by
member (name + uncompressed payload bytes) rather than as container
bytes, because zip containers embed timestamps — two runs that produce
bit-identical arrays get bit-identical digests, which is the
reproducibility contract the manifest exists to check.
"""

from __future__ import annotations

import hashlib
import platform
import subprocess
import sys
import time
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.util.atomic import atomic_write_json
from repro.util.rng import DEFAULT_ROOT_SEED

SCHEMA_VERSION = 1

MANIFEST_NAME = "run_manifest.json"


def digest_bytes(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def digest_file(path: Union[str, Path]) -> str:
    """Content digest of one artifact (zip-container-timestamp-proof)."""
    path = Path(path)
    if path.suffix == ".npz" and zipfile.is_zipfile(path):
        h = hashlib.sha256()
        with zipfile.ZipFile(path) as zf:
            for name in sorted(zf.namelist()):
                h.update(name.encode("utf-8"))
                h.update(b"\x00")
                h.update(zf.read(name))
        return h.hexdigest()
    return digest_bytes(path.read_bytes())


def git_sha() -> Optional[str]:
    """HEAD of the repository this package lives in, or ``None``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _describe_output(value: Union[str, Path, bytes]) -> dict:
    if isinstance(value, bytes):
        return {"sha256": digest_bytes(value), "bytes": len(value)}
    path = Path(value)
    return {
        "path": str(path),
        "sha256": digest_file(path),
        "bytes": path.stat().st_size,
    }


def build_manifest(
    *,
    command: str,
    config: Optional[dict] = None,
    outputs: Optional[Dict[str, Union[str, Path, bytes]]] = None,
    app: Optional[str] = None,
    machine: Optional[str] = None,
    seed: int = DEFAULT_ROOT_SEED,
    cache=None,
    report=None,
    journal=None,
    guard=None,
    tracer=None,
    profile_cache=None,
    serve=None,
    dag=None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble the manifest document for one run.

    ``outputs`` maps artifact names to file paths (digested from disk)
    or raw bytes (for stdout-rendered results like the Table I text).
    ``cache``/``report``/``journal`` accept the live
    ``SignatureCache``/``RunReport``/``RunJournal`` objects (or their
    stats) and serialize through their ``to_dict()`` views; ``tracer``
    contributes per-stage durations.  ``profile_cache`` accepts the
    reuse-engine :class:`~repro.cache.reuse.ProfileCache` (or its
    stats): per-tier hit/miss/eviction counts land under
    ``"profile_cache"`` so reuse/serve capacity can be tuned from the
    manifest alone.  ``serve`` accepts the serving-tier
    :class:`~repro.serve.resilience.ServeReport` (or its dict view):
    the per-run fault tallies land under ``"serve"`` so the manifest,
    the metrics registry, and ``serve_summary.json`` can be held to the
    same numbers.  ``dag`` accepts the pipeline-DAG run view
    (:class:`~repro.pipeline.dag.DagRunResult`, its stats, or a plain
    dict): node statuses and the ``dag.*`` tallies land under ``"dag"``.
    """
    doc: dict = {
        "schema_version": SCHEMA_VERSION,
        "command": command,
        "config": {
            k: (v if isinstance(v, (str, int, float, bool, list)) or v is None
                else repr(v))
            for k, v in sorted((config or {}).items())
        },
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "seed": seed,
        "app": app,
        "machine": machine,
        "created_unix_s": round(time.time(), 3),
        "outputs": {
            name: _describe_output(value)
            for name, value in sorted((outputs or {}).items())
        },
    }
    if cache is not None:
        stats = getattr(cache, "stats", cache)
        doc["cache"] = stats.to_dict()
    if report is not None:
        doc["resilience"] = report.to_dict()
    if guard is not None:
        doc["guard"] = guard.to_dict() if hasattr(guard, "to_dict") else guard
    if journal is not None:
        stats = getattr(journal, "stats", journal)
        doc["journal"] = stats.to_dict()
    if profile_cache is not None:
        stats = getattr(profile_cache, "stats", profile_cache)
        doc["profile_cache"] = stats.to_dict()
    if tracer is not None:
        doc["stage_durations"] = tracer.stage_durations()
    if serve is not None:
        doc["serve"] = serve.to_dict() if hasattr(serve, "to_dict") else serve
    if dag is not None:
        doc["dag"] = dag.to_dict() if hasattr(dag, "to_dict") else dag
    if extra:
        doc.update(extra)
    return doc


def write_manifest(path: Union[str, Path], manifest: dict) -> Path:
    # atomic: a crash mid-write must never leave a torn manifest next
    # to intact artifacts (the manifest is the reproducibility record)
    return atomic_write_json(path, manifest)


def output_digests(manifest: dict) -> Dict[str, str]:
    """The reproducibility surface: artifact name -> content digest."""
    return {
        name: entry["sha256"] for name, entry in manifest["outputs"].items()
    }
