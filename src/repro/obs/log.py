"""Structured, rate-limit-safe logging for the pipeline.

Built on stdlib :mod:`logging` under the ``repro`` logger namespace:

- :func:`get_logger` hands out ``repro.<name>`` child loggers;
- :func:`configure` installs exactly one stderr handler on the
  ``repro`` root with either the human console formatter or the JSONL
  formatter, driven by the ``--log-level``/``--log-json``/``--quiet``
  CLI flags or the ``REPRO_LOG`` environment variable
  (``REPRO_LOG=debug``, ``REPRO_LOG=json:info``, ...);
- a :class:`RateLimitFilter` keeps repeated messages (retry storms,
  per-rank diagnostics) from flooding the console: at most ``burst``
  records per (logger, level, template) per ``interval_s`` window, with
  a ``(+N suppressed)`` annotation when the window reopens;
- a :class:`TaskContextFilter` stamps every record with the current
  task key (:func:`set_task_context`), so pool workers log with
  ``task=collect:uh3d:1024:rank7``-style context.

Everything goes to **stderr**; stdout is reserved for result tables.
Log output never feeds back into any computation, so enabling it cannot
change numeric results.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Dict, Optional

#: environment configuration, e.g. ``REPRO_LOG=debug`` or ``json:info``
ENV_LOG = "REPRO_LOG"

ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: mutable task context stamped onto records by TaskContextFilter
_TASK_CONTEXT: Dict[str, str] = {}


def get_logger(name: str) -> logging.Logger:
    """The ``repro.<name>`` logger (idempotent, hierarchy-aware)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def set_task_context(**context: str) -> None:
    """Attach key=value context to every subsequent record (worker use)."""
    _TASK_CONTEXT.update({k: str(v) for k, v in context.items()})


def clear_task_context() -> None:
    _TASK_CONTEXT.clear()


class TaskContextFilter(logging.Filter):
    """Copies the current task context onto each record (never drops)."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.task_context = dict(_TASK_CONTEXT)
        return True


class RateLimitFilter(logging.Filter):
    """Token-bucket per (logger, level, template): ``burst`` per window.

    Keyed on ``record.msg`` (the *template*, before ``%`` formatting) so
    a storm of per-task messages that differ only in arguments counts as
    one key.  When a window expires with suppressed records, the next
    allowed record is annotated with ``(+N suppressed)``.
    """

    def __init__(self, burst: int = 20, interval_s: float = 1.0):
        super().__init__()
        self.burst = burst
        self.interval_s = interval_s
        self._windows: Dict[tuple, list] = {}  # key -> [start, allowed, dropped]

    def filter(self, record: logging.LogRecord) -> bool:
        key = (record.name, record.levelno, str(record.msg))
        now = time.monotonic()
        window = self._windows.get(key)
        if window is None or now - window[0] >= self.interval_s:
            dropped = window[2] if window else 0
            self._windows[key] = [now, 1, 0]
            if dropped:
                record.msg = f"{record.msg} (+{dropped} suppressed)"
            return True
        if window[1] < self.burst:
            window[1] += 1
            return True
        window[2] += 1
        return False


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: message [k=v ...]`` console lines."""

    def format(self, record: logging.LogRecord) -> str:
        ts = time.strftime("%H:%M:%S", time.localtime(record.created))
        short = record.name
        if short.startswith(ROOT_LOGGER + "."):
            short = short[len(ROOT_LOGGER) + 1:]
        line = f"{ts} {record.levelname:<7} {short}: {record.getMessage()}"
        context = getattr(record, "task_context", None)
        if context:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
            line = f"{line} [{pairs}]"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg (+ context)."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
            "pid": record.process,
        }
        context = getattr(record, "task_context", None)
        if context:
            doc["context"] = context
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True)


def _parse_env(value: str) -> tuple:
    """``REPRO_LOG`` grammar: tokens split on ``:``/``,``.

    Tokens are level names (``debug``/``info``/``warning``/``error``)
    and the format selectors ``json``/``human``; unknown tokens are
    ignored rather than fatal (an env typo must not kill a run).
    """
    level = None
    json_mode = None
    for token in value.replace(",", ":").split(":"):
        token = token.strip().lower()
        if token in _LEVELS:
            level = token
        elif token == "json":
            json_mode = True
        elif token == "human":
            json_mode = False
    return level, json_mode


def configure(
    level: Optional[str] = None,
    json_mode: Optional[bool] = None,
    *,
    quiet: bool = False,
    stream=None,
    burst: int = 20,
    interval_s: float = 1.0,
) -> logging.Logger:
    """(Re)configure the ``repro`` root logger.

    Explicit arguments win over ``$REPRO_LOG``; the default is
    human-formatted ``warning`` so library use stays silent unless asked.
    ``quiet`` forces ``error`` regardless of every other source — the
    ``--quiet`` contract is "results only".
    """
    env_level, env_json = _parse_env(os.environ.get(ENV_LOG, ""))
    if level is None:
        level = env_level or "warning"
    if json_mode is None:
        json_mode = bool(env_json)
    if quiet:
        level = "error"

    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(_LEVELS[level])
    root.propagate = False
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else HumanFormatter())
    handler.addFilter(TaskContextFilter())
    handler.addFilter(RateLimitFilter(burst=burst, interval_s=interval_s))
    root.addHandler(handler)
    return root


def is_configured() -> bool:
    return bool(logging.getLogger(ROOT_LOGGER).handlers)


def worker_init() -> None:
    """Per-worker logging setup (called from the pool initializer).

    Forked workers inherit the parent's handlers and need nothing;
    spawned workers start bare and are configured from ``$REPRO_LOG``.
    Either way the task-context store starts clean.
    """
    clear_task_context()
    if not is_configured() and os.environ.get(ENV_LOG):
        configure()
