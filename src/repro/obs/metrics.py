"""Process-local metrics registry: counters, gauges, histogram timers.

One global :data:`REGISTRY` absorbs every tally the pipeline produces —
the signature cache's hit/miss/store/corrupt counts, the resilient
executor's recovery events, per-stage wall-clock timers, cache-simulator
throughput counters — and exports them as one JSON document
(``--metrics-out metrics.json``).  The legacy per-instance tallies
(:class:`repro.exec.sigcache.CacheStats`,
:class:`repro.exec.resilience.RunReport`) remain as thin views: their
increment sites mirror into the registry, so the exported counters
always equal the legacy text summaries.

Everything here is observability-only: no RNG, no influence on any
numeric pipeline output, and cheap enough (dict updates) to stay always
on.  Worker processes get a fresh registry
(:func:`repro.obs.worker_init`) and ship their deltas back to the parent
inside the span envelope (see :mod:`repro.obs.trace`), where
:meth:`MetricsRegistry.merge` folds them in.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.telemetry import StreamingHistogram


class Counter:
    """Handle to one monotonically increasing counter."""

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name

    def inc(self, n: Union[int, float] = 1) -> None:
        self._registry.inc(self.name, n)

    @property
    def value(self) -> Union[int, float]:
        return self._registry.counters.get(self.name, 0)


class Gauge:
    """Handle to one last-value-wins gauge."""

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name

    def set(self, value: float) -> None:
        self._registry.set_gauge(self.name, value)

    @property
    def value(self) -> float:
        return self._registry.gauges.get(self.name, 0.0)


def _quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending list (q in [0, 1])."""
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


#: exact observations kept per timer: short runs (and every existing
#: p50/p95 test expectation) stay numerically identical to the old
#: raw-list math; past this the streaming histogram answers quantiles
RESERVOIR_SIZE = 256


class TimerState:
    """One timer's bounded state: streaming histogram + exact reservoir.

    The histogram makes memory O(1) however long the process serves
    (the raw-list timers it replaces grew one float per observation);
    the first :data:`RESERVOIR_SIZE` observations are also kept exactly
    so short-run quantiles match the legacy sorted-list interpolation
    bit for bit.  ``count``/``sum``/``max`` are always exact.
    """

    __slots__ = ("hist", "reservoir")

    def __init__(self) -> None:
        self.hist = StreamingHistogram()
        self.reservoir: List[float] = []

    @property
    def exact(self) -> bool:
        """True while every observation is still in the reservoir."""
        return self.hist.count <= RESERVOIR_SIZE

    def observe(self, seconds: float) -> None:
        value = float(seconds)
        self.hist.observe(value)
        if len(self.reservoir) < RESERVOIR_SIZE:
            self.reservoir.append(value)

    def quantile(self, q: float) -> float:
        if self.exact:
            return _quantile(sorted(self.reservoir), q)
        return self.hist.quantile(q)

    def summary(self) -> Dict[str, float]:
        hist = self.hist
        return {
            "count": hist.count,
            "sum_s": hist.total,
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "max_s": hist.max_value if hist.count else 0.0,
        }

    def to_dict(self) -> dict:
        return {
            "hist": self.hist.to_dict(),
            "reservoir": list(self.reservoir),
        }

    def merge(self, shipped: Union["TimerState", dict, List[float]]) -> None:
        """Fold a shipped form in: another state, its :meth:`to_dict`,
        or a legacy raw list of observations."""
        if isinstance(shipped, list):
            for value in shipped:
                self.observe(value)
            return
        if isinstance(shipped, TimerState):
            hist, reservoir = shipped.hist, shipped.reservoir
        else:
            hist = StreamingHistogram.from_dict(shipped["hist"])
            reservoir = shipped.get("reservoir", [])
        self.hist.merge(hist)
        room = RESERVOIR_SIZE - len(self.reservoir)
        if room > 0:
            self.reservoir.extend(float(v) for v in reservoir[:room])


class Timer:
    """Handle to one histogram timer (observations in seconds)."""

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name

    def observe(self, seconds: float) -> None:
        self._registry.observe(self.name, seconds)

    @contextmanager
    def time(self):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)

    def summary(self) -> Dict[str, float]:
        state = self._registry.timers.get(self.name)
        if state is None:
            state = TimerState()
        return state.summary()


class MetricsRegistry:
    """Counters, gauges, and histogram timers for one process.

    Counter/gauge/timer names are free-form dotted strings
    (``cache.hits``, ``replay.jobs``, ``fit.series_s``); the registry
    creates them on first touch.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Union[int, float]] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, TimerState] = {}

    # -- primitive operations (also reachable through handles) ---------

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Allocation-free gauge write for hot paths (no handle object)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        state = self.timers.get(name)
        if state is None:
            state = self.timers[name] = TimerState()
        state.observe(seconds)

    def counter(self, name: str) -> Counter:
        return Counter(self, name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(self, name)

    def timer(self, name: str) -> Timer:
        return Timer(self, name)

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def drain(self) -> Dict[str, dict]:
        """Snapshot everything and reset — the worker-shipping primitive."""
        snapshot = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {k: v.to_dict() for k, v in self.timers.items()},
        }
        self.reset()
        return snapshot

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`drain` snapshot (e.g. from a pool worker) in.

        Timer snapshots arrive as :meth:`TimerState.to_dict` documents;
        legacy raw-list snapshots (pre-histogram drains) still merge.
        """
        for name, n in snapshot.get("counters", {}).items():
            self.inc(name, n)
        self.gauges.update(snapshot.get("gauges", {}))
        for name, shipped in snapshot.get("timers", {}).items():
            state = self.timers.get(name)
            if state is None:
                state = self.timers[name] = TimerState()
            state.merge(shipped)

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The exported document: plain counters/gauges + timer summaries."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: Timer(self, name).summary()
                for name in sorted(self.timers)
            },
        }

    def export(self, path: Union[str, Path]) -> dict:
        """Write the registry as a JSON document; returns the document."""
        doc = self.to_dict()
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return doc


#: the process-global registry every pipeline layer reports into
REGISTRY = MetricsRegistry()
