"""Process-local metrics registry: counters, gauges, histogram timers.

One global :data:`REGISTRY` absorbs every tally the pipeline produces —
the signature cache's hit/miss/store/corrupt counts, the resilient
executor's recovery events, per-stage wall-clock timers, cache-simulator
throughput counters — and exports them as one JSON document
(``--metrics-out metrics.json``).  The legacy per-instance tallies
(:class:`repro.exec.sigcache.CacheStats`,
:class:`repro.exec.resilience.RunReport`) remain as thin views: their
increment sites mirror into the registry, so the exported counters
always equal the legacy text summaries.

Everything here is observability-only: no RNG, no influence on any
numeric pipeline output, and cheap enough (dict updates) to stay always
on.  Worker processes get a fresh registry
(:func:`repro.obs.worker_init`) and ship their deltas back to the parent
inside the span envelope (see :mod:`repro.obs.trace`), where
:meth:`MetricsRegistry.merge` folds them in.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Union


class Counter:
    """Handle to one monotonically increasing counter."""

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name

    def inc(self, n: Union[int, float] = 1) -> None:
        self._registry.inc(self.name, n)

    @property
    def value(self) -> Union[int, float]:
        return self._registry.counters.get(self.name, 0)


class Gauge:
    """Handle to one last-value-wins gauge."""

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name

    def set(self, value: float) -> None:
        self._registry.gauges[self.name] = float(value)

    @property
    def value(self) -> float:
        return self._registry.gauges.get(self.name, 0.0)


def _quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending list (q in [0, 1])."""
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class Timer:
    """Handle to one histogram timer (observations in seconds)."""

    __slots__ = ("_registry", "name")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name

    def observe(self, seconds: float) -> None:
        self._registry.observe(self.name, seconds)

    @contextmanager
    def time(self):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)

    def summary(self) -> Dict[str, float]:
        values = sorted(self._registry.timers.get(self.name, []))
        return {
            "count": len(values),
            "sum_s": float(sum(values)),
            "p50_s": _quantile(values, 0.50),
            "p95_s": _quantile(values, 0.95),
            "max_s": values[-1] if values else 0.0,
        }


class MetricsRegistry:
    """Counters, gauges, and histogram timers for one process.

    Counter/gauge/timer names are free-form dotted strings
    (``cache.hits``, ``replay.jobs``, ``fit.series_s``); the registry
    creates them on first touch.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Union[int, float]] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, List[float]] = {}

    # -- primitive operations (also reachable through handles) ---------

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        self.timers.setdefault(name, []).append(float(seconds))

    def counter(self, name: str) -> Counter:
        return Counter(self, name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(self, name)

    def timer(self, name: str) -> Timer:
        return Timer(self, name)

    # -- lifecycle ------------------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()

    def drain(self) -> Dict[str, dict]:
        """Snapshot everything and reset — the worker-shipping primitive."""
        snapshot = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {k: list(v) for k, v in self.timers.items()},
        }
        self.reset()
        return snapshot

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`drain` snapshot (e.g. from a pool worker) in."""
        for name, n in snapshot.get("counters", {}).items():
            self.inc(name, n)
        self.gauges.update(snapshot.get("gauges", {}))
        for name, values in snapshot.get("timers", {}).items():
            self.timers.setdefault(name, []).extend(values)

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The exported document: plain counters/gauges + timer summaries."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: Timer(self, name).summary()
                for name in sorted(self.timers)
            },
        }

    def export(self, path: Union[str, Path]) -> dict:
        """Write the registry as a JSON document; returns the document."""
        doc = self.to_dict()
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return doc


#: the process-global registry every pipeline layer reports into
REGISTRY = MetricsRegistry()
