"""Communication trace extrapolation (ScalaExtrap-style, paper ref [22]).

The paper extrapolates *computation* behavior and notes it "can be
complemented by communication trace extrapolation" (Wu & Mueller,
PPoPP'11): synthetically generating the application's communication
trace for large rank counts from a set of smaller traces.  This package
implements that complement for SPMD stencil-style codes, closing the
last dependency on the application at the target count — with it, the
whole pipeline (computation trace + event timeline) at 8192 ranks is
synthesized purely from small-count observations:

1. :mod:`repro.commextrap.topology` — recover the virtual process grid
   from each rank's communication partners (ScalaExtrap's topology
   identification).
2. :mod:`repro.commextrap.stanza` — detect the repeating per-time-step
   event skeleton ("stanza") of each rank and compress the trace to
   (stanza, repeat count).
3. :mod:`repro.commextrap.synthesize` — match each target rank to
   training-representative ranks by grid role (boundary profile +
   normalized position), fit every scalar event feature (message bytes,
   compute iterations) across the training counts with the canonical
   forms, and emit the full target-count event scripts.
"""

from repro.commextrap.topology import InferredTopology, infer_topology
from repro.commextrap.stanza import Stanza, compress_script, stanza_signature
from repro.commextrap.synthesize import (
    CommExtrapolationError,
    extrapolate_job,
)

__all__ = [
    "InferredTopology",
    "infer_topology",
    "Stanza",
    "compress_script",
    "stanza_signature",
    "extrapolate_job",
    "CommExtrapolationError",
]
