"""Virtual-topology identification from communication partners.

ScalaExtrap's first step: given only who-talks-to-whom, recover the
d-dimensional process grid the SPMD application laid its ranks on.  We
search over 3-D factorizations of the rank count and score each by how
many observed point-to-point edges it explains as unit-offset neighbor
links (with or without periodic wrap); the winning factorization, plus
the per-dimension periodicity that explains the wrap edges, is the
inferred topology.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.simmpi.events import RecvEvent, SendEvent
from repro.simmpi.runtime import Job


def _factorizations(p: int) -> List[Tuple[int, int, int]]:
    """All ordered 3-factor decompositions of ``p``."""
    out = []
    for a in range(1, p + 1):
        if p % a:
            continue
        rest = p // a
        for b in range(1, rest + 1):
            if rest % b:
                continue
            out.append((a, b, rest // b))
    return out


@dataclass(frozen=True)
class InferredTopology:
    """A recovered process grid."""

    grid: Tuple[int, int, int]
    periodic: Tuple[bool, bool, bool]
    #: fraction of observed p2p edges explained by unit-offset links
    explained: float

    def coords_of(self, rank: int) -> Tuple[int, int, int]:
        gx, gy, _gz = self.grid
        return (rank % gx, (rank // gx) % gy, rank // (gx * gy))

    def rank_of(self, coords: Tuple[int, int, int]) -> int:
        gx, gy, gz = self.grid
        x, y, z = coords
        if not (0 <= x < gx and 0 <= y < gy and 0 <= z < gz):
            raise ValueError(f"coords {coords} outside grid {self.grid}")
        return x + y * gx + z * gx * gy

    def offset_of(self, src: int, dst: int) -> Tuple[int, int, int]:
        """Unit-offset vector from src to dst (wrap-aware), or raise."""
        sc, dc = self.coords_of(src), self.coords_of(dst)
        offset = []
        for d in range(3):
            delta = dc[d] - sc[d]
            if self.periodic[d] and self.grid[d] > 1:
                half = self.grid[d] / 2
                if delta > half:
                    delta -= self.grid[d]
                elif delta < -half:
                    delta += self.grid[d]
            offset.append(delta)
        if sorted(map(abs, offset)) not in ([0, 0, 1],):
            raise ValueError(
                f"ranks {src}->{dst} are not unit-offset neighbors on "
                f"grid {self.grid} (offset {tuple(offset)})"
            )
        return tuple(offset)

    def neighbor(self, rank: int, offset: Tuple[int, int, int]) -> int:
        """The rank at a unit offset, honoring periodicity.

        Returns ``-1`` if the offset leaves a non-periodic boundary.
        """
        coords = list(self.coords_of(rank))
        for d in range(3):
            coords[d] += offset[d]
            if self.periodic[d]:
                coords[d] %= self.grid[d]
            elif not 0 <= coords[d] < self.grid[d]:
                return -1
        return self.rank_of(tuple(coords))


def _p2p_edges(job: Job) -> Set[Tuple[int, int]]:
    edges = set()
    for script in job.scripts:
        for ev in script.events:
            if isinstance(ev, SendEvent):
                edges.add((script.rank, ev.dest))
            elif isinstance(ev, RecvEvent):
                edges.add((ev.src, script.rank))
    return edges


def infer_topology(job: Job) -> InferredTopology:
    """Recover the process grid of a job from its p2p edges.

    Scores every 3-factor decomposition of the rank count under both
    periodic and non-periodic wrap per dimension; returns the best
    explanation.  Prefers (on ties) fewer periodic dimensions and more
    balanced grids, and requires at least 95% of edges explained.
    """
    edges = _p2p_edges(job)
    # scoring cost is |factorizations| x 8 x |edges|; a deterministic
    # sample of edges is ample to discriminate grids at large rank
    # counts.  Hash-based selection: strided sampling of the sorted list
    # aliases against the grid structure and can drop entire edge
    # classes (e.g. every periodic-wrap edge).
    if len(edges) > 2048:
        keep = max(1, len(edges) // 2048)

        def _mix(a: int, b: int) -> int:
            x = (a * 0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9) & (
                (1 << 64) - 1
            )
            return x ^ (x >> 31)

        edges = {e for e in edges if _mix(e[0], e[1]) % keep == 0}
    if not edges:
        # computation-only job: any grid works; pick the balanced one
        from repro.apps.decomposition import factor3

        return InferredTopology(
            grid=factor3(job.n_ranks), periodic=(False,) * 3, explained=1.0
        )
    best: InferredTopology = None
    for grid in _factorizations(job.n_ranks):
        gx, gy, gz = grid
        # decide periodicity per dimension from the wrap edges directly
        for periodic in itertools.product((False, True), repeat=3):
            topo = InferredTopology(grid=grid, periodic=periodic, explained=0.0)
            explained = 0
            for src, dst in edges:
                try:
                    topo.offset_of(src, dst)
                except ValueError:
                    continue
                explained += 1
            frac = explained / len(edges)
            candidate = InferredTopology(
                grid=grid, periodic=periodic, explained=frac
            )
            if best is None or _better(candidate, best):
                best = candidate
    if best.explained < 0.95:
        raise ValueError(
            f"no 3-D grid explains the communication of {job.app} "
            f"(best: {best.grid} periodic={best.periodic} "
            f"explains {best.explained:.0%})"
        )
    return best


def _imbalance(grid: Tuple[int, int, int]) -> int:
    return max(grid) - min(grid)


def _better(a: InferredTopology, b: InferredTopology) -> bool:
    """Explain more edges; tie-break to fewer periodic dims, balance."""
    key_a = (-a.explained, sum(a.periodic), _imbalance(a.grid), a.grid)
    key_b = (-b.explained, sum(b.periodic), _imbalance(b.grid), b.grid)
    return key_a < key_b
