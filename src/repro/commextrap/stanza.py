"""Stanza detection: compress a rank's trace to its repeating skeleton.

SPMD time-stepping codes emit the same event *shape* every step; only
scalar payloads (message bytes, compute iterations) vary.  ScalaExtrap
exploits this regularity; we detect the shortest prefix whose repetition
reproduces the whole script's type/structure signature and represent the
trace as one :class:`Stanza` plus a repeat count, with per-slot scalar
series kept for fitting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.simmpi.events import (
    CollectiveEvent,
    ComputeEvent,
    Event,
    RecvEvent,
    SendEvent,
)


def _slot_signature(ev: Event) -> Tuple:
    """The structural identity of an event (scalars excluded)."""
    if isinstance(ev, ComputeEvent):
        return ("compute", ev.block_id)
    if isinstance(ev, SendEvent):
        return ("send", ev.tag)
    if isinstance(ev, RecvEvent):
        return ("recv", ev.tag)
    if isinstance(ev, CollectiveEvent):
        return ("coll", ev.op)
    raise TypeError(f"unknown event type {type(ev)!r}")


def stanza_signature(events: List[Event]) -> Tuple:
    """Structural signature of a whole event sequence."""
    return tuple(_slot_signature(ev) for ev in events)


def _scalar_of(ev: Event) -> float:
    if isinstance(ev, ComputeEvent):
        return float(ev.iterations)
    if isinstance(ev, (SendEvent, RecvEvent)):
        return float(ev.nbytes)
    return float(ev.nbytes)  # collective payload


@dataclass
class Stanza:
    """One rank's repeating event skeleton.

    ``template`` holds one period's events (the first occurrence);
    ``repeats`` how many times it recurs; ``scalars[i]`` the per-period
    scalar values of slot ``i`` (length ``repeats``), letting callers
    check stationarity or fit within-run trends.
    """

    rank: int
    template: List[Event]
    repeats: int
    scalars: List[List[float]] = field(default_factory=list)

    @property
    def n_slots(self) -> int:
        return len(self.template)

    def signature(self) -> Tuple:
        return stanza_signature(self.template)

    def slot_scalar(self, slot: int) -> float:
        """Representative (first-period) scalar of one slot."""
        return self.scalars[slot][0]

    def is_stationary(self, slot: int) -> bool:
        """True if the slot's scalar is identical across periods."""
        vals = self.scalars[slot]
        return all(v == vals[0] for v in vals)


def compress_script(rank: int, events: List[Event]) -> Stanza:
    """Find the shortest repeating stanza of a rank's event list.

    The whole script must be an integer number of repetitions of a
    structural period (the normal shape of a time-stepping SPMD trace);
    scripts with a non-repeating structure compress to a single period
    covering everything (repeats=1), which downstream code handles
    uniformly.
    """
    n = len(events)
    if n == 0:
        return Stanza(rank=rank, template=[], repeats=0)
    signature = stanza_signature(events)
    for period in range(1, n + 1):
        if n % period:
            continue
        head = signature[:period]
        if signature == head * (n // period):
            repeats = n // period
            scalars = [
                [_scalar_of(events[r * period + i]) for r in range(repeats)]
                for i in range(period)
            ]
            return Stanza(
                rank=rank,
                template=list(events[:period]),
                repeats=repeats,
                scalars=scalars,
            )
    raise AssertionError("period=n always matches")  # pragma: no cover
