"""Synthesis of large-count event traces from small-count traces.

The ScalaExtrap recipe, adapted to this library's event model:

1. infer each training job's process grid (:mod:`.topology`) and each
   rank's repeating stanza (:mod:`.stanza`);
2. map every *target* rank to one representative rank per training job
   by grid role — the same per-dimension boundary category (low edge /
   interior / high edge / periodic) at the nearest normalized position.
   Positions, not rank ids, carry meaning across core counts: the rank
   sitting at 25% of the x-axis does the same physics at every scale;
3. extrapolate each stanza slot's scalar (compute iterations, message
   bytes, collective payloads).  Geometry first, curves second — the
   ScalaExtrap insight: under strong scaling a volume-like scalar times
   the full grid size, or a face-like scalar times the complementary
   grid product of its offset dimension, is an *invariant* of the
   problem; when the invariant is constant across the training jobs the
   target value follows exactly from the target grid (this is what
   handles the staircase of per-dimension face sizes, which no smooth
   curve in P can represent).  Slots without a detected invariant fall
   back to canonical-form fitting (extended set by default: absolute
   magnitudes follow power laws the paper's four forms cannot
   represent, DESIGN.md §5);
4. re-derive point-to-point partners from the representative's grid
   *offsets* applied to the target grid, and finally reconcile receive
   sizes against the synthesized sends (matched FIFO per (src, dest,
   tag), exactly like the replay engine) so the job is self-consistent.

The result is a complete :class:`~repro.simmpi.runtime.Job` at the
target count, built without running the application there — the
communication-side complement of the paper's computation-trace
extrapolation.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.decomposition import factor3
from repro.commextrap.stanza import Stanza, compress_script
from repro.commextrap.topology import InferredTopology, infer_topology
from repro.core.canonical import CanonicalForm, EXTENDED_FORMS, fit_best
from repro.simmpi.events import (
    CollectiveEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
)
from repro.simmpi.runtime import Job, RankScript, verify_job


class CommExtrapolationError(ValueError):
    """Raised when the training jobs cannot be extrapolated."""


def _category(coord: int, extent: int, periodic: bool) -> str:
    """Per-dimension boundary role of a grid coordinate."""
    if periodic or extent == 1:
        return "p" if periodic else "solo"
    if coord == 0:
        return "lo"
    if coord == extent - 1:
        return "hi"
    return "mid"


def _match_coord(pos: float, category: str, extent: int) -> int:
    """Training-grid coordinate with the same category nearest ``pos``."""
    raw = int(round(pos * extent - 0.5))
    raw = min(max(raw, 0), extent - 1)
    if category in ("p", "solo"):
        return raw
    if category == "lo":
        return 0
    if category == "hi":
        return extent - 1
    # interior: clamp away from the edges (possible only when extent > 2)
    if extent <= 2:
        raise CommExtrapolationError(
            f"target rank is interior in a dimension where a training grid "
            f"has extent {extent} (no interior ranks to learn from)"
        )
    return min(max(raw, 1), extent - 2)


def _fit_scalar(
    counts: np.ndarray,
    values: Sequence[float],
    target: int,
    forms: Sequence[CanonicalForm],
) -> float:
    values = np.asarray(values, dtype=np.float64)
    if np.all(values == values[0]):
        return float(values[0])
    fit = fit_best(counts, values, forms)
    return float(fit.predict(np.array([float(target)]))[0])


#: relative spread below which a grid-product invariant counts as constant
_INVARIANT_RTOL = 0.02


def _invariant_extrapolate(
    values: Sequence[float],
    train_products: Sequence[int],
    target_product: int,
) -> Optional[float]:
    """Geometry-invariant extrapolation of one slot scalar.

    If ``value * product`` is constant across the training jobs (the
    slot is inversely proportional to that grid product — volume work to
    the full grid size, face traffic to the offset dimension's
    complementary product), return the exactly-extrapolated target
    value; otherwise ``None``.
    """
    values = np.asarray(values, dtype=np.float64)
    products = np.asarray(train_products, dtype=np.float64)
    invariants = values * products
    if np.any(invariants <= 0):
        return None
    spread = invariants.max() / invariants.min() - 1.0
    if spread > _INVARIANT_RTOL:
        return None
    return float(invariants.mean() / target_product)


def _complementary_product(
    grid: Tuple[int, int, int], offset: Tuple[int, int, int]
) -> int:
    """Product of grid extents over the dimensions the offset is flat in."""
    prod = 1
    for d in range(3):
        if offset[d] == 0:
            prod *= grid[d]
    return prod


def _reconcile_recv_sizes(scripts: List[RankScript]) -> None:
    """Make receive sizes equal their matched sends' (FIFO per key)."""
    queues: Dict[Tuple[int, int, int], Deque[int]] = defaultdict(deque)
    for script in scripts:
        for ev in script.events:
            if isinstance(ev, SendEvent):
                queues[(script.rank, ev.dest, ev.tag)].append(ev.nbytes)
    for script in scripts:
        for i, ev in enumerate(script.events):
            if isinstance(ev, RecvEvent):
                key = (ev.src, script.rank, ev.tag)
                if not queues[key]:
                    raise CommExtrapolationError(
                        f"synthesized job has an unmatched recv on {key}"
                    )
                nbytes = queues[key].popleft()
                if nbytes != ev.nbytes:
                    script.events[i] = replace(ev, nbytes=nbytes)


def extrapolate_job(
    jobs: Sequence[Job],
    target_n_ranks: int,
    *,
    forms: Sequence[CanonicalForm] = EXTENDED_FORMS,
    target_grid: Optional[Tuple[int, int, int]] = None,
) -> Job:
    """Synthesize a job's event traces at a large rank count.

    Parameters
    ----------
    jobs:
        Training jobs at ascending rank counts (>= 2).
    target_n_ranks:
        Rank count to synthesize.
    forms:
        Canonical forms for slot-scalar fitting (extended set by
        default; see module docstring).
    target_grid:
        Override the target process grid (defaults to the balanced
        factorization, matching MPI_Dims_create behavior).
    """
    if len(jobs) < 2:
        raise CommExtrapolationError(
            f"need at least 2 training jobs, got {len(jobs)}"
        )
    jobs = sorted(jobs, key=lambda j: j.n_ranks)
    counts = np.array([j.n_ranks for j in jobs], dtype=np.float64)
    if len(set(j.n_ranks for j in jobs)) != len(jobs):
        raise CommExtrapolationError("duplicate training rank counts")

    topologies = [infer_topology(j) for j in jobs]
    periodic = topologies[0].periodic
    for topo in topologies[1:]:
        if topo.periodic != periodic:
            raise CommExtrapolationError(
                f"training jobs disagree on periodicity: "
                f"{[t.periodic for t in topologies]}"
            )

    grid = target_grid or factor3(target_n_ranks)
    if grid[0] * grid[1] * grid[2] != target_n_ranks:
        raise CommExtrapolationError(
            f"target grid {grid} does not cover {target_n_ranks} ranks"
        )
    target_topo = InferredTopology(grid=grid, periodic=periodic, explained=1.0)

    # pre-compress every training rank's script (lazy per-rank would
    # re-do work: each training rank typically represents many targets)
    stanzas: List[Dict[int, Stanza]] = [
        {s.rank: compress_script(s.rank, s.events) for s in job.scripts}
        for job in jobs
    ]

    # thousands of target ranks share identical slot series (same role,
    # same density level, ...); memoize the curve fits
    fit_cache: Dict[Tuple[float, ...], float] = {}

    def fallback_fit(slot_values: Sequence[float]) -> float:
        key = tuple(slot_values)
        if key not in fit_cache:
            fit_cache[key] = max(
                0.0, _fit_scalar(counts, slot_values, target_n_ranks, forms)
            )
        return fit_cache[key]

    scripts: List[RankScript] = []
    for rank in range(target_n_ranks):
        coords = target_topo.coords_of(rank)
        categories = tuple(
            _category(coords[d], grid[d], periodic[d]) for d in range(3)
        )
        pos = tuple((coords[d] + 0.5) / grid[d] for d in range(3))

        reps: List[Stanza] = []
        rep_topos: List[InferredTopology] = []
        for job, topo, stanza_map in zip(jobs, topologies, stanzas):
            tcoords = tuple(
                _match_coord(pos[d], categories[d], topo.grid[d])
                for d in range(3)
            )
            rep_rank = topo.rank_of(tcoords)
            reps.append(stanza_map[rep_rank])
            rep_topos.append(topo)

        signature = reps[0].signature()
        for stanza in reps[1:]:
            if stanza.signature() != signature:
                raise CommExtrapolationError(
                    f"representatives of target rank {rank} have differing "
                    f"event structure across training counts"
                )
        repeats = int(
            round(_fit_scalar(counts, [s.repeats for s in reps], target_n_ranks, forms))
        )
        if repeats < 0:
            repeats = 0

        template: List = []
        for slot in range(reps[0].n_slots):
            model = reps[0].template[slot]
            slot_values = [s.slot_scalar(slot) for s in reps]
            if isinstance(model, ComputeEvent):
                # volume-like invariant: iterations x total ranks
                scalar = _invariant_extrapolate(
                    slot_values,
                    [j.n_ranks for j in jobs],
                    target_n_ranks,
                )
                if scalar is None:
                    scalar = fallback_fit(slot_values)
                template.append(
                    ComputeEvent(
                        block_id=model.block_id,
                        iterations=int(round(scalar)),
                    )
                )
            elif isinstance(model, (SendEvent, RecvEvent)):
                # partner via the representative's grid offset
                offsets = []
                for stanza, topo in zip(reps, rep_topos):
                    ev = stanza.template[slot]
                    src, dst = (
                        (stanza.rank, ev.dest)
                        if isinstance(ev, SendEvent)
                        else (ev.src, stanza.rank)
                    )
                    offsets.append(topo.offset_of(src, dst))
                if len(set(offsets)) != 1:
                    raise CommExtrapolationError(
                        f"target rank {rank} slot {slot}: partner offsets "
                        f"disagree across training counts: {offsets}"
                    )
                offset = offsets[0]
                if isinstance(model, SendEvent):
                    partner = target_topo.neighbor(rank, offset)
                else:
                    partner = target_topo.neighbor(
                        rank, tuple(-o for o in offset)
                    )
                if partner < 0:
                    raise CommExtrapolationError(
                        f"target rank {rank} slot {slot}: role-matched "
                        f"representative communicates across a boundary the "
                        f"target rank does not have"
                    )
                # face-like invariant: bytes x complementary grid product
                scalar = _invariant_extrapolate(
                    slot_values,
                    [
                        _complementary_product(topo.grid, offset)
                        for topo in rep_topos
                    ],
                    _complementary_product(grid, offset),
                )
                if scalar is None:
                    scalar = fallback_fit(slot_values)
                nbytes = int(round(scalar))
                if isinstance(model, SendEvent):
                    template.append(
                        SendEvent(dest=partner, nbytes=nbytes, tag=model.tag)
                    )
                else:
                    template.append(
                        RecvEvent(src=partner, nbytes=nbytes, tag=model.tag)
                    )
            elif isinstance(model, CollectiveEvent):
                scalar = fallback_fit(slot_values)
                template.append(
                    CollectiveEvent(op=model.op, nbytes=int(round(scalar)))
                )
            else:  # pragma: no cover - stanza covers all types
                raise TypeError(f"unknown event {type(model)!r}")

        events = [ev for _ in range(repeats) for ev in template]
        scripts.append(RankScript(rank=rank, events=events))

    _reconcile_recv_sizes(scripts)
    job = Job(app=jobs[0].app, n_ranks=target_n_ranks, scripts=scripts)
    verify_job(job)
    return job
