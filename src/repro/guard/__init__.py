"""Stage-boundary guardrails for the extrapolation pipeline.

PR 3 made the *execution* layer fault-tolerant; this package defends
the *data* flowing between stages.  Three pillars:

- **validators** (:mod:`repro.guard.validators`): fast structural and
  physical checks on every artifact crossing a stage boundary — trace
  files, fitted models, extrapolated traces, machine profiles — each
  problem a typed, element-addressed :class:`GuardViolation` instead of
  a deep-stack crash.
- **gates** (:mod:`repro.guard.gates`): per-element fit quality gates
  combining training residuals, leave-one-out cross-validation
  (:mod:`repro.core.crossval`), and cross-engine spot checks of the
  batched engine against the scalar reference.
- **the degradation ladder** (:mod:`repro.guard.engine`): under
  ``GuardPolicy`` ``strict``/``degrade``/``off``, flagged elements
  degrade individually (hold the nearest collected value) before the
  whole trace degrades (substitute the largest collected trace) before
  the prediction is refused — every step recorded in a
  :class:`DegradationReport` that flows into the run manifest, the
  ``guard.*`` metrics, and the CLI summary.

Invariant: on clean inputs, guards-on output is bit-identical to
guards-off output (DESIGN.md §7.7).
"""

from repro.guard.config import GuardConfig, POLICIES
from repro.guard.degrade import (
    DegradationReport,
    ElementDegradation,
    TraceDegradation,
)
from repro.guard.engine import (
    check_prediction_inputs,
    check_signature,
    guarded_extrapolate,
    guarded_extrapolate_many,
)
from repro.guard.gates import GateFlag
from repro.guard.validators import (
    validate_machine_profile,
    validate_trace,
)
from repro.guard.violations import GuardError, GuardViolation

__all__ = [
    "POLICIES",
    "DegradationReport",
    "ElementDegradation",
    "GateFlag",
    "GuardConfig",
    "GuardError",
    "GuardViolation",
    "TraceDegradation",
    "check_prediction_inputs",
    "check_signature",
    "guarded_extrapolate",
    "guarded_extrapolate_many",
    "validate_machine_profile",
    "validate_trace",
]
