"""The guarded extrapolation engine and the degradation ladder.

:func:`guarded_extrapolate_many` wraps
:func:`repro.core.extrapolate.extrapolate_trace_many` with the full
guard sequence:

1. **validate** every training trace at the collect→fit boundary;
2. decide per policy: ``strict`` refuses on the first error-or-worse
   violation, ``degrade`` walks the ladder;
3. **sanitize** flagged training entries (replace each invalid value
   with the nearest valid one in the series, preferring the larger
   count) so fitting never sees poison;
4. **fit + synthesize** on the sanitized series;
5. run the **quality gates** (residual, cross-validation, cross-engine
   spot check — see :mod:`repro.guard.gates`);
6. **hold** each flagged element at its nearest collected value in the
   synthesized output (ladder rung 1), re-monotonizing hit rates;
7. **validate** every synthesized trace as an extrapolated-trace
   postcondition.

Escalations: a training series that is mostly poison
(``max_degraded_fraction``), an element with no valid entries, fewer
than two structurally usable traces, or an inconsistent series degrade
the *whole* synthesized trace to a copy of the largest violation-free
collected trace (rung 2); with no violation-free trace to copy, the
prediction is **refused** (rung 3) — a :class:`GuardError` even under
``degrade``.

Invariant: on violation-free inputs the guarded path returns traces
bit-identical to the unguarded path — validation only reads,
sanitization and holds only touch flagged elements, the spot check
cannot disagree on clean data (the engines agree to ~1e-9, three
orders of magnitude inside the tolerance), and advisory gate flags
never modify anything.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.canonical import CanonicalForm, PAPER_FORMS
from repro.core.extrapolate import (
    ExtrapolationResult,
    ExtrapolationSweep,
    extrapolate_trace_many,
)
from repro.core.fitting import BatchedFitReport, FitReport
from repro.guard.config import GuardConfig
from repro.guard.degrade import (
    DegradationReport,
    ElementDegradation,
    TraceDegradation,
)
from repro.guard.gates import (
    crossval_gate,
    residual_gate,
    spot_check_gate,
)
from repro.guard.validators import (
    validate_fit_report,
    validate_machine_profile,
    validate_trace,
)
from repro.guard.violations import GuardError, GuardViolation
from repro.obs.trace import span
from repro.trace.tracefile import TraceFile
from repro.util.errors import FitError

ElementKey = Tuple[int, int, str]  #: (block_id, instr_index, feature)


def _refusal_violation(message: str, boundary: str) -> GuardViolation:
    return GuardViolation(
        artifact="prediction",
        boundary=boundary,
        check="refusal",
        message=message,
        severity="fatal",
    )


def _refuse(
    report: DegradationReport,
    message: str,
    violations: Sequence[GuardViolation],
    *,
    boundary: str,
) -> GuardError:
    report.refuse(message)
    evidence = [v for v in violations if v.rank >= 1]
    return GuardError(evidence or [_refusal_violation(message, boundary)])


def _substitute_trace(src: TraceFile, target: int, rank: int) -> TraceFile:
    out = copy.deepcopy(src)
    out.n_ranks = target
    out.rank = rank
    out.extrapolated = True
    return out


def _substitute_sweep(
    clean: Sequence[TraceFile],
    targets: Sequence[int],
    rank: int,
    report: DegradationReport,
    reason: str,
    violations: Sequence[GuardViolation],
) -> ExtrapolationSweep:
    """Ladder rung 2 for the whole run: every target gets a copy of the
    largest violation-free collected trace; rung 3 (refusal) with none."""
    if not clean:
        raise _refuse(
            report,
            f"{reason}; no violation-free training trace to substitute",
            violations,
            boundary="collect->fit",
        )
    src = max(clean, key=lambda t: t.n_ranks)
    fit_report = FitReport(
        core_counts=sorted(t.n_ranks for t in clean), fits={}
    )
    results = []
    for target in targets:
        report.degrade_trace(
            TraceDegradation(
                target=target,
                action="substitute-collected",
                reason=reason,
                substitute_n_ranks=src.n_ranks,
            )
        )
        results.append(
            ExtrapolationResult(
                trace=_substitute_trace(src, target, rank),
                report=fit_report,
                target_n_ranks=target,
            )
        )
    return ExtrapolationSweep(
        results=results, report=fit_report, targets=list(targets)
    )


def _nearest_valid(valid: Sequence[int], i: int) -> int:
    """Index of the valid entry nearest to ``i``, larger count on ties."""
    return min(valid, key=lambda v: (abs(v - i), -v))


def guarded_extrapolate_many(
    traces: Sequence[TraceFile],
    targets: Sequence[int],
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
    rank: int = -1,
    rate_trust_factor: float = 2.0,
    engine: str = "batched",
    config: Optional[GuardConfig] = None,
    report: Optional[DegradationReport] = None,
) -> Tuple[ExtrapolationSweep, DegradationReport]:
    """Extrapolate with stage-boundary guards and the degradation ladder.

    Same signature and semantics as
    :func:`~repro.core.extrapolate.extrapolate_trace_many`, plus a
    :class:`~repro.guard.config.GuardConfig` (``None`` or policy
    ``"off"`` disables everything) and an optional shared
    :class:`~repro.guard.degrade.DegradationReport` to accumulate into.
    Returns ``(sweep, report)``.
    """
    if config is None or not config.enabled:
        sweep = extrapolate_trace_many(
            traces,
            targets,
            forms=forms,
            rank=rank,
            rate_trust_factor=rate_trust_factor,
            engine=engine,
        )
        return sweep, (report or DegradationReport(policy="off"))
    report = report or DegradationReport.for_config(config)

    # usage errors stay usage errors — the ladder is for bad *data*
    if len(traces) < 2:
        raise FitError(
            f"need at least 2 training traces, got {len(traces)} "
            "(the paper uses 3)",
            stage="fit",
        )
    targets = [int(t) for t in targets]
    if not targets:
        raise FitError("need at least one target core count", stage="fit")
    for t in targets:
        if t <= 0:
            raise FitError(
                f"target core count must be positive, got {t}", stage="fit"
            )

    with span("guard.validate", boundary="collect->fit", traces=len(traces)):
        ordered = sorted(traces, key=lambda t: t.n_ranks)
        per_trace = [
            validate_trace(t, boundary="collect->fit") for t in ordered
        ]
    all_violations = [v for vs in per_trace for v in vs]
    report.add_violations(all_violations)
    serious = [v for v in all_violations if v.rank >= 1]
    if config.strict and serious:
        raise GuardError(serious)

    clean = [t for t, vs in zip(ordered, per_trace) if not vs]
    usable = [
        t
        for t, vs in zip(ordered, per_trace)
        if not any(v.severity == "fatal" for v in vs)
    ]

    def substitute_all(reason: str) -> ExtrapolationSweep:
        return _substitute_sweep(
            clean, targets, rank, report, reason, all_violations
        )

    if len(usable) < 2:
        return (
            substitute_all(
                f"only {len(usable)} structurally valid training traces"
            ),
            report,
        )

    # flagged entries: (element key) -> set of indices into `usable`
    invalid: Dict[ElementKey, Set[int]] = {}
    index_of = {id(t): i for i, t in enumerate(usable)}
    for t, vs in zip(ordered, per_trace):
        if id(t) not in index_of:
            continue
        for v in vs:
            if v.rank >= 1 and not v.element_addressed:
                return substitute_all(f"trace-level violation: {v.describe()}")
            if v.element_addressed:
                key = (v.block_id, v.instr_id, v.feature)
                invalid.setdefault(key, set()).add(index_of[id(t)])

    schema = usable[0].schema
    n_elements = len(usable[0].pair_keys()) * schema.n_features
    if n_elements and len(invalid) / n_elements > config.max_degraded_fraction:
        return (
            substitute_all(
                f"{len(invalid)}/{n_elements} elements flagged exceeds "
                f"max degraded fraction {config.max_degraded_fraction:g}"
            ),
            report,
        )

    # sanitize: deep-copy only affected traces, replace each invalid
    # entry with the nearest valid one; remember the hold value (the
    # valid entry at the largest count) for the output override
    copies: Dict[int, TraceFile] = {}

    def writable(i: int) -> TraceFile:
        if i not in copies:
            copies[i] = copy.deepcopy(usable[i])
        return copies[i]

    held: Dict[ElementKey, Tuple[float, str]] = {}
    for key, bad in sorted(invalid.items()):
        valid = [i for i in range(len(usable)) if i not in bad]
        if not valid:
            return (
                substitute_all(
                    "element block {0} instr {1} feature {2!r} has no valid "
                    "training entries".format(*key)
                ),
                report,
            )
        bid, k, feature = key
        j = schema.index(feature)
        for i in sorted(bad):
            src = usable[_nearest_valid(valid, i)]
            writable(i).blocks[bid].instructions[k].features[j] = float(
                src.blocks[bid].instructions[k].features[j]
            )
        lo, hi = schema.bounds(feature)
        value = float(
            usable[max(valid)].blocks[bid].instructions[k].features[j]
        )
        held[key] = (float(np.clip(value, lo, hi)), "training-data violation")
    sanitized = [copies.get(i, t) for i, t in enumerate(usable)]

    try:
        sweep = extrapolate_trace_many(
            sanitized,
            targets,
            forms=forms,
            rank=rank,
            rate_trust_factor=rate_trust_factor,
            engine=engine,
        )
    except (FitError, ValueError) as exc:
        if config.strict:
            raise
        return substitute_all(f"fitting failed: {exc}"), report

    # fitted-model boundary: hold any element whose selected fit is
    # non-finite (cannot happen on finite sanitized series, but the
    # boundary is checked, not assumed)
    fit_violations = validate_fit_report(sweep.report, schema)
    report.add_violations(fit_violations)
    if config.strict and fit_violations:
        raise GuardError(fit_violations)
    for v in fit_violations:
        key = (v.block_id, v.instr_id, v.feature)
        if key in held:
            continue
        lo, hi = schema.bounds(v.feature)
        j = schema.index(v.feature)
        value = float(
            sanitized[-1].blocks[v.block_id].instructions[v.instr_id].features[j]
        )
        held[key] = (float(np.clip(value, lo, hi)), "non-finite fit")

    # -- quality gates --------------------------------------------------
    report.add_gate_flags(
        residual_gate(sweep.report, config.residual_threshold)
    )
    crossval = crossval_gate(
        sanitized, config.trust_threshold, forms=forms
    )
    if crossval is not None:
        report.trust_fraction = crossval.trust_fraction
        report.crossval_median_error = crossval.median_error
        report.add_gate_flags(crossval.flags)

    if isinstance(sweep.report, BatchedFitReport):
        template = sanitized[0]
        vectors = {
            res.target_n_ranks: {
                pair: res.trace.blocks[pair[0]].instructions[pair[1]].features
                for pair in res.trace.pair_keys()
            }
            for res in sweep.results
        }
        outcome = spot_check_gate(
            sweep.report,
            vectors,
            forms=forms,
            rate_trust_factor=rate_trust_factor,
            config=config,
            seed_tokens=(template.app, template.target),
        )
        report.bump("n_spot_checks", len(outcome.checked_pairs))
        report.add_gate_flags(outcome.flags)
        if outcome.flags and config.strict:
            disagreements = [
                GuardViolation(
                    artifact="extrapolated-trace",
                    boundary="fit->extrapolate",
                    check="spot-check",
                    message=(
                        f"engines disagree by {f.score:.3e} relative "
                        f"(tolerance {f.threshold:g})"
                    ),
                    severity="error",
                    block_id=f.block_id,
                    instr_id=f.instr_id,
                    feature=f.feature,
                )
                for f in outcome.flags
            ]
            report.add_violations(disagreements)
            raise GuardError(disagreements)
        for (target, pair), ref in sorted(outcome.reference.items()):
            trace = sweep.result_for(target).trace
            trace.blocks[pair[0]].instructions[pair[1]].features[:] = ref
        for f in outcome.flags:
            report.degrade_element(
                ElementDegradation(
                    block_id=f.block_id,
                    instr_id=f.instr_id,
                    feature=f.feature,
                    action="reference-fallback",
                    reason="cross-engine spot-check disagreement",
                )
            )

    # -- ladder rung 1: hold flagged elements at collected values -------
    hr = schema.hit_rate_slice
    for key, (value, reason) in sorted(held.items()):
        bid, k, feature = key
        j = schema.index(feature)
        for res in sweep.results:
            vec = res.trace.blocks[bid].instructions[k].features
            vec[j] = value
            if schema.is_rate_field(feature):
                vec[hr] = np.clip(np.maximum.accumulate(vec[hr]), 0.0, 1.0)
        report.degrade_element(
            ElementDegradation(
                block_id=bid,
                instr_id=k,
                feature=feature,
                action="hold-nearest",
                reason=reason,
                value=value,
            )
        )

    # -- postcondition: every synthesized trace is physical -------------
    with span(
        "guard.validate", boundary="extrapolate->predict", traces=len(targets)
    ):
        for i, res in enumerate(sweep.results):
            post = validate_trace(res.trace, boundary="extrapolate->predict")
            bad = [v for v in post if v.rank >= 1]
            if not bad:
                continue
            report.add_violations(bad)
            if config.strict:
                raise GuardError(bad)
            if not clean:
                raise _refuse(
                    report,
                    f"synthesized trace for target {res.target_n_ranks} is "
                    "non-physical and no violation-free training trace "
                    "exists to substitute",
                    bad,
                    boundary="extrapolate->predict",
                )
            src = max(clean, key=lambda t: t.n_ranks)
            report.degrade_trace(
                TraceDegradation(
                    target=res.target_n_ranks,
                    action="substitute-collected",
                    reason="synthesized trace failed postcondition: "
                    + bad[0].describe(),
                    substitute_n_ranks=src.n_ranks,
                )
            )
            sweep.results[i] = ExtrapolationResult(
                trace=_substitute_trace(src, res.target_n_ranks, rank),
                report=sweep.report,
                target_n_ranks=res.target_n_ranks,
            )
    return sweep, report


def guarded_extrapolate(
    traces: Sequence[TraceFile],
    target_n_ranks: int,
    *,
    forms: Sequence[CanonicalForm] = PAPER_FORMS,
    rank: int = -1,
    rate_trust_factor: float = 2.0,
    engine: str = "batched",
    config: Optional[GuardConfig] = None,
    report: Optional[DegradationReport] = None,
) -> Tuple[ExtrapolationResult, DegradationReport]:
    """Single-target convenience wrapper over
    :func:`guarded_extrapolate_many`."""
    sweep, report = guarded_extrapolate_many(
        traces,
        [target_n_ranks],
        forms=forms,
        rank=rank,
        rate_trust_factor=rate_trust_factor,
        engine=engine,
        config=config,
        report=report,
    )
    return sweep.results[0], report


def check_signature(
    signature,
    *,
    config: Optional[GuardConfig],
    report: DegradationReport,
    boundary: str = "collect->fit",
) -> List[GuardViolation]:
    """Validate every trace of a collected signature at a boundary.

    Used by the standalone ``collect`` command, where there is no
    downstream fit to repair into: ``degrade`` records and proceeds
    (the poison is caught again, and repaired, at fit time),
    ``strict`` refuses.
    """
    if config is None or not config.enabled:
        return []
    violations: List[GuardViolation] = []
    for rank in sorted(signature.traces):
        violations.extend(
            validate_trace(signature.traces[rank], boundary=boundary)
        )
    report.add_violations(violations)
    serious = [v for v in violations if v.rank >= 1]
    if config.strict and serious:
        raise GuardError(serious)
    return violations


def check_prediction_inputs(
    trace: TraceFile,
    machine,
    *,
    config: Optional[GuardConfig],
    report: DegradationReport,
) -> List[GuardViolation]:
    """Validate the trace + machine profile entering prediction.

    A broken machine profile is run configuration, not per-element
    data — nothing on the ladder applies, so its (fatal) violations
    refuse under every enabled policy.  Trace violations refuse under
    ``strict`` and are recorded under ``degrade`` (a standalone trace
    has no training series to hold values from).
    """
    if config is None or not config.enabled:
        return []
    violations = validate_trace(trace, boundary="trace->predict")
    profile_violations = validate_machine_profile(machine)
    report.add_violations(violations + profile_violations)
    if profile_violations:
        raise _refuse(
            report,
            "machine profile failed validation",
            profile_violations,
            boundary="profile->predict",
        )
    serious = [v for v in violations if v.rank >= 1]
    if config.strict and serious:
        raise GuardError(serious)
    return violations + profile_violations
