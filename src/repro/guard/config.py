"""Guard policy and thresholds.

``GuardConfig`` is the single knob bundle threaded through the pipeline
(CLI ``--guard``/``--trust-threshold`` flags build one).  The policy
selects a rung style on the degradation ladder:

=========  ==========================================================
``off``    guards disabled entirely; the pipeline behaves exactly as
           if this package did not exist
``degrade``validate and gate, repair what can be repaired (hold
           nearest-collected values, substitute the largest collected
           trace), refuse only when nothing on the ladder applies
``strict`` validate and gate, refuse on the first ``error``-or-worse
           violation with an element-addressed message
=========  ==========================================================

Quality-gate flags (training residuals, cross-validation) are
*advisory* under every policy: with only a handful of training points a
statistical gate flags clean data too, and acting on such flags would
break the clean-run bit-identity invariant (DESIGN.md §7.7).  Only
physical/structural violations and cross-engine spot-check
disagreements — which cannot occur on clean inputs — alter output or
refuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

#: recognized guard policies
POLICIES = ("strict", "degrade", "off")


@dataclass(frozen=True)
class GuardConfig:
    """Policy plus every gate threshold, validated at construction."""

    #: ladder behavior: "strict" | "degrade" | "off"
    policy: str = "degrade"
    #: leave-one-out held-out relative error above which an element is
    #: flagged by the cross-validation gate (advisory)
    trust_threshold: float = 0.2
    #: worst training relative residual above which an element is
    #: flagged by the residual gate (advisory)
    residual_threshold: float = 0.5
    #: fraction of (block, instr) pairs spot-checked against the
    #: reference engine (0 disables the spot check)
    spot_check_fraction: float = 0.05
    #: spot-check at least this many pairs (when the trace has them)
    spot_check_min: int = 4
    #: relative tolerance beyond which the engines "disagree"; the
    #: engines agree to ~1e-9 on clean inputs, so 1e-6 never fires there
    spot_check_rtol: float = 1e-6
    #: flagged-element fraction beyond which per-element holds give way
    #: to whole-trace substitution (ladder rung 2)
    max_degraded_fraction: float = 0.5
    #: fraction of profiled blocks the reuse cache engine re-simulates
    #: exactly per run (0 disables the cross-engine check)
    cache_check_fraction: float = 0.25
    #: spot-check at least this many blocks (when the program has them)
    cache_check_min: int = 1
    #: per-block access budget of one cross-engine spot check; both
    #: engines evaluate the same truncated stream, so this bounds the
    #: exact-replay cost the check pays
    cache_check_accesses: int = 32_768
    #: relative tolerance of the cross-engine check (on aggregate
    #: per-level cumulative hit rates)
    cache_check_rtol: float = 0.05
    #: absolute tolerance floor of the cross-engine check; the reuse
    #: model's set-mixing approximation can sit a few percent off the
    #: exact replay at a capacity knee, which is approximation error,
    #: not divergence (DESIGN.md §7.8)
    cache_check_atol: float = 0.05

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown guard policy {self.policy!r}; known: {POLICIES}"
            )
        check_positive("trust_threshold", self.trust_threshold)
        check_positive("residual_threshold", self.residual_threshold)
        check_in_range(
            "spot_check_fraction", self.spot_check_fraction, low=0.0, high=1.0
        )
        check_in_range("spot_check_min", self.spot_check_min, low=0)
        check_positive("spot_check_rtol", self.spot_check_rtol)
        check_in_range(
            "max_degraded_fraction", self.max_degraded_fraction,
            low=0.0, high=1.0,
        )
        check_in_range(
            "cache_check_fraction", self.cache_check_fraction,
            low=0.0, high=1.0,
        )
        check_in_range("cache_check_min", self.cache_check_min, low=0)
        check_positive("cache_check_accesses", self.cache_check_accesses)
        check_positive("cache_check_rtol", self.cache_check_rtol)
        check_in_range("cache_check_atol", self.cache_check_atol, low=0.0)

    @property
    def enabled(self) -> bool:
        return self.policy != "off"

    @property
    def strict(self) -> bool:
        return self.policy == "strict"
