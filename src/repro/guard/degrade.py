"""The degradation ladder's ledger.

A :class:`DegradationReport` records everything the guard subsystem did
to one run — violations observed, gate flags raised, elements held,
traces substituted, predictions refused — and mirrors its counters into
the global metrics registry under ``guard.*`` (the same pattern
:class:`repro.exec.resilience.RunReport` uses for ``resilience.*``), so
the run manifest, the metrics export, and the CLI summary all agree.

The ladder itself (decide → repair → escalate) lives in
:mod:`repro.guard.engine`; this module only remembers what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.guard.config import GuardConfig
from repro.guard.gates import GateFlag
from repro.guard.violations import GuardViolation
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

log = get_logger("guard")

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ElementDegradation:
    """One element repaired on ladder rung 1 (or spot-check fallback)."""

    block_id: int
    instr_id: int
    feature: str
    action: str  #: "hold-nearest" | "reference-fallback"
    reason: str
    value: Optional[float] = None  #: the substituted value, when scalar

    def to_dict(self) -> dict:
        return {
            "block_id": self.block_id,
            "instr_id": self.instr_id,
            "feature": self.feature,
            "action": self.action,
            "reason": self.reason,
            "value": self.value,
        }


@dataclass(frozen=True)
class TraceDegradation:
    """One whole synthesized trace replaced on ladder rung 2."""

    target: int
    action: str  #: "substitute-collected"
    reason: str
    substitute_n_ranks: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "action": self.action,
            "reason": self.reason,
            "substitute_n_ranks": self.substitute_n_ranks,
        }


@dataclass
class DegradationReport:
    """Everything the guards observed and did in one run."""

    policy: str = "degrade"
    trust_threshold: Optional[float] = None
    trust_fraction: Optional[float] = None  #: crossval gate summary
    crossval_median_error: Optional[float] = None
    violations: List[GuardViolation] = field(default_factory=list)
    gate_flags: List[GateFlag] = field(default_factory=list)
    degraded_elements: List[ElementDegradation] = field(default_factory=list)
    degraded_traces: List[TraceDegradation] = field(default_factory=list)
    refusal_messages: List[str] = field(default_factory=list)

    # counters (mirrored into REGISTRY as guard.<name>)
    n_violations: int = 0
    n_gate_flags: int = 0
    n_elements_degraded: int = 0
    n_traces_degraded: int = 0
    n_refusals: int = 0
    n_spot_checks: int = 0  #: pairs compared against the reference engine
    n_spot_disagreements: int = 0
    n_crossval_flagged: int = 0
    n_residual_flagged: int = 0

    #: counter fields, in summary() order (the metrics mirroring surface)
    COUNTER_FIELDS = (
        "n_violations",
        "n_gate_flags",
        "n_elements_degraded",
        "n_traces_degraded",
        "n_refusals",
        "n_spot_checks",
        "n_spot_disagreements",
        "n_crossval_flagged",
        "n_residual_flagged",
    )

    @classmethod
    def for_config(cls, config: GuardConfig) -> "DegradationReport":
        return cls(policy=config.policy, trust_threshold=config.trust_threshold)

    def bump(self, name: str, n: int = 1) -> None:
        """Increment one tally, mirrored into the global metrics registry
        as ``guard.<name>`` (sans the ``n_`` prefix)."""
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"guard.{name[2:] if name.startswith('n_') else name}", n)

    # -- recording ------------------------------------------------------

    def add_violations(self, violations: List[GuardViolation]) -> None:
        for v in violations:
            self.violations.append(v)
            self.bump("n_violations")
            log.warning("guard violation: %s", v.describe())

    def add_gate_flags(self, flags: List[GateFlag]) -> None:
        for f in flags:
            self.gate_flags.append(f)
            self.bump("n_gate_flags")
            if f.gate == "crossval":
                self.bump("n_crossval_flagged")
            elif f.gate == "residual":
                self.bump("n_residual_flagged")
            elif f.gate == "spot-check":
                self.bump("n_spot_disagreements")

    def degrade_element(self, degradation: ElementDegradation) -> None:
        self.degraded_elements.append(degradation)
        self.bump("n_elements_degraded")
        log.warning(
            "guard degraded block %d instr %d feature %r: %s (%s)",
            degradation.block_id,
            degradation.instr_id,
            degradation.feature,
            degradation.action,
            degradation.reason,
        )

    def degrade_trace(self, degradation: TraceDegradation) -> None:
        self.degraded_traces.append(degradation)
        self.bump("n_traces_degraded")
        log.warning(
            "guard substituted whole trace for target %d: %s",
            degradation.target,
            degradation.reason,
        )

    def refuse(self, message: str) -> None:
        self.refusal_messages.append(message)
        self.bump("n_refusals")
        log.error("guard refusal: %s", message)

    # -- summaries ------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when the guards neither observed nor changed anything
        that matters: no violations, no degradations, no refusals, no
        engine disagreement.  Advisory gate flags do not spoil a clean
        run — they carry no evidence of invalid data."""
        return (
            self.n_violations == 0
            and self.n_elements_degraded == 0
            and self.n_traces_degraded == 0
            and self.n_refusals == 0
            and self.n_spot_disagreements == 0
        )

    def merge(self, other: "DegradationReport") -> None:
        """Fold another report in (e.g. per-stage reports into the run's).

        Counters are re-bumped so the metrics mirror stays consistent
        only when ``other`` was accumulated on a different registry;
        within one process, prefer sharing a single report instead.
        """
        self.violations.extend(other.violations)
        self.gate_flags.extend(other.gate_flags)
        self.degraded_elements.extend(other.degraded_elements)
        self.degraded_traces.extend(other.degraded_traces)
        self.refusal_messages.extend(other.refusal_messages)
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if other.trust_fraction is not None:
            self.trust_fraction = other.trust_fraction
        if other.crossval_median_error is not None:
            self.crossval_median_error = other.crossval_median_error

    def summary(self) -> str:
        parts = [
            f"{name[2:].replace('_', ' ')}: {getattr(self, name)}"
            for name in self.COUNTER_FIELDS
        ]
        if self.trust_fraction is not None:
            parts.append(f"trust fraction: {self.trust_fraction:.3f}")
        return f"guard[{self.policy}] " + ", ".join(parts)

    def to_dict(self) -> dict:
        """The exported DegradationReport document (see
        ``tests/schemas/degradation.schema.json``)."""
        return {
            "schema_version": _SCHEMA_VERSION,
            "policy": self.policy,
            "clean": self.clean,
            "trust_threshold": self.trust_threshold,
            "trust_fraction": self.trust_fraction,
            "crossval_median_error": self.crossval_median_error,
            "counters": {
                name[2:]: getattr(self, name) for name in self.COUNTER_FIELDS
            },
            "violations": [v.to_dict() for v in self.violations],
            "gate_flags": [f.to_dict() for f in self.gate_flags],
            "degraded_elements": [
                d.to_dict() for d in self.degraded_elements
            ],
            "degraded_traces": [d.to_dict() for d in self.degraded_traces],
            "refusals": list(self.refusal_messages),
        }
