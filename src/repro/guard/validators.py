"""Stage-boundary artifact validators.

Each validator performs fast structural + physical checks on one
artifact kind and returns a list of :class:`GuardViolation` — it never
raises on bad *data* (only on caller programming errors), because the
caller decides, per :class:`~repro.guard.config.GuardConfig` policy,
whether to degrade or refuse.

Checks are vectorized over the whole trace (one stacked feature matrix,
a handful of array passes), so validating at every boundary costs far
less than the stage work it protects.

Physical invariants checked on traces:

- every feature value finite,
- count fields (``exec_count``, ``mem_ops``, ...) non-negative,
- cumulative hit rates within [0, 1],
- cumulative hit rates non-decreasing outward across cache levels,
- per-instruction vector width matches the schema (structural),
- positive ``n_ranks`` (structural).

Extrapolated traces additionally assert the synthesis postconditions
(``extrapolated`` marker set; the same physical invariants double as
the bounds/monotonization postcondition check).  Machine profiles check
finite positive fp issue rates, finite network parameters, and a
behavioral probe of the bandwidth surface.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import List, Optional

import numpy as np

from repro.guard.violations import GuardViolation
from repro.trace.tracefile import TraceFile

#: slack for float-representation noise in rate range/monotonicity
#: checks; real poison (NaN, negatives, >1 rates) is far outside it
_RATE_TOL = 1e-9


def _element_violations(
    mask: np.ndarray,
    trace: TraceFile,
    *,
    artifact: str,
    boundary: str,
    check: str,
    message_for,
) -> List[GuardViolation]:
    """Materialize one violation per True entry of a (pairs, features)
    mask, element-addressed through the trace's pair keys."""
    out: List[GuardViolation] = []
    if not mask.any():
        return out
    pair_keys = trace.pair_keys()
    schema = trace.schema
    for p, j in zip(*np.nonzero(mask)):
        bid, k = pair_keys[int(p)]
        feature = schema.fields[int(j)]
        value = float(trace.blocks[bid].instructions[k].features[int(j)])
        out.append(
            GuardViolation(
                artifact=artifact,
                boundary=boundary,
                check=check,
                message=message_for(feature, value),
                severity="error",
                block_id=bid,
                instr_id=k,
                feature=feature,
            )
        )
    return out


def validate_trace(
    trace: TraceFile,
    *,
    boundary: str,
    artifact: Optional[str] = None,
) -> List[GuardViolation]:
    """All structural + physical violations of one trace file."""
    if artifact is None:
        artifact = "extrapolated-trace" if trace.extrapolated else "trace"
    violations: List[GuardViolation] = []
    schema = trace.schema

    if trace.n_ranks <= 0:
        violations.append(
            GuardViolation(
                artifact=artifact,
                boundary=boundary,
                check="n-ranks",
                message=f"non-positive core count {trace.n_ranks}",
                severity="fatal",
            )
        )

    # structural: vector widths must match the schema before any
    # physical check can address elements by column
    structural = False
    for block in trace.sorted_blocks():
        for k, ins in enumerate(block.instructions):
            width = np.asarray(ins.features).shape
            if len(width) != 1 or width[0] != schema.n_features:
                structural = True
                violations.append(
                    GuardViolation(
                        artifact=artifact,
                        boundary=boundary,
                        check="schema",
                        message=(
                            f"feature vector has shape {width}, schema "
                            f"expects ({schema.n_features},)"
                        ),
                        severity="fatal",
                        block_id=block.block_id,
                        instr_id=k,
                    )
                )
    if structural:
        return violations

    matrix = trace.stacked_features()
    if matrix.size == 0:
        return violations

    violations += _element_violations(
        ~np.isfinite(matrix),
        trace,
        artifact=artifact,
        boundary=boundary,
        check="finite",
        message_for=lambda f, v: f"non-finite value {v!r}",
    )
    # NaN compares False everywhere below, so a non-finite element is
    # flagged exactly once (by the finite check)
    count_cols = np.array(
        [schema.is_count_field(f) for f in schema.fields]
    )
    negative = np.zeros(matrix.shape, dtype=bool)
    negative[:, count_cols] = matrix[:, count_cols] < 0.0
    violations += _element_violations(
        negative,
        trace,
        artifact=artifact,
        boundary=boundary,
        check="count-negative",
        message_for=lambda f, v: f"negative count {v!r}",
    )

    hr = schema.hit_rate_slice
    rates = matrix[:, hr]
    out_of_range = np.zeros(matrix.shape, dtype=bool)
    out_of_range[:, hr] = (rates < -_RATE_TOL) | (rates > 1.0 + _RATE_TOL)
    violations += _element_violations(
        out_of_range,
        trace,
        artifact=artifact,
        boundary=boundary,
        check="rate-range",
        message_for=lambda f, v: f"hit rate {v!r} outside [0, 1]",
    )

    # cumulative hit rates cannot decrease outward; flag the offending
    # (outer) level of each decreasing step
    non_monotone = np.zeros(matrix.shape, dtype=bool)
    if rates.shape[1] >= 2:
        drops = np.diff(rates, axis=1) < -_RATE_TOL
        non_monotone[:, hr.start + 1: hr.stop] = drops
    violations += _element_violations(
        non_monotone,
        trace,
        artifact=artifact,
        boundary=boundary,
        check="rate-monotone",
        message_for=lambda f, v: (
            f"cumulative hit rate {v!r} decreases from the previous level"
        ),
    )

    if artifact == "extrapolated-trace" and not trace.extrapolated:
        violations.append(
            GuardViolation(
                artifact=artifact,
                boundary=boundary,
                check="extrapolated-marker",
                message="trace is not marked extrapolated",
                severity="error",
            )
        )
    return violations


def validate_fit_report(
    report,
    schema,
    *,
    boundary: str = "fit->extrapolate",
) -> List[GuardViolation]:
    """Violations of a fitted model set: selected fits must have finite
    parameters and finite training SSE.

    Works on both engines through the common :class:`FitReport` API;
    the batched report materializes only the selected candidate per
    element (cheap: parameters are already fitted arrays).
    """
    violations: List[GuardViolation] = []
    for element in report.elements():
        best = element.fit
        bad = None
        if not np.all(np.isfinite(best.params)):
            bad = f"selected form {best.form.name!r} has non-finite parameters"
        elif not np.isfinite(best.sse):
            bad = f"selected form {best.form.name!r} has non-finite SSE"
        if bad is not None:
            violations.append(
                GuardViolation(
                    artifact="fit",
                    boundary=boundary,
                    check="fit-finite",
                    message=bad,
                    severity="error",
                    block_id=element.block_id,
                    instr_id=element.instr_id,
                    feature=element.feature,
                )
            )
    return violations


def validate_machine_profile(
    profile,
    *,
    boundary: str = "profile->predict",
) -> List[GuardViolation]:
    """Violations of a machine profile (all fatal: a profile is run
    configuration, not per-element data — there is nothing to hold or
    substitute, so the ladder's only option is refusal)."""
    violations: List[GuardViolation] = []

    def fatal(check: str, message: str) -> None:
        violations.append(
            GuardViolation(
                artifact="machine-profile",
                boundary=boundary,
                check=check,
                message=message,
                severity="fatal",
            )
        )

    for kind, rate in sorted(profile.fp_rates_gflops.items()):
        if not np.isfinite(rate) or rate <= 0:
            fatal("fp-rate", f"fp rate for {kind!r} is {rate!r} GFLOP/s")

    for f in dataclass_fields(profile.network):
        value = getattr(profile.network, f.name)
        if isinstance(value, (int, float)) and not np.isfinite(value):
            fatal("network", f"network parameter {f.name!r} is {value!r}")

    # behavioral probe: the surface must price both an all-hit and an
    # all-miss reference stream to a finite positive bandwidth
    n_levels = profile.n_levels
    probes = np.vstack(
        [np.ones(n_levels), np.linspace(0.0, 1.0, n_levels)]
    )
    try:
        bw = np.asarray(profile.memory_bandwidth_gbs(probes), dtype=np.float64)
    except Exception as exc:  # noqa: BLE001 - any crash is a violation
        fatal("surface", f"bandwidth surface evaluation failed: {exc}")
    else:
        if not np.all(np.isfinite(bw)) or np.any(bw <= 0):
            fatal(
                "surface",
                f"bandwidth surface returned non-physical bandwidths {bw!r}",
            )
    return violations
