"""Typed, element-addressed guard violations.

A :class:`GuardViolation` names the artifact, the stage boundary it was
crossing, the check that failed, and — whenever the problem is local to
one feature element — the ``(block, instr, feature)`` address, so a
poisoned value surfaces as ``trace element block 2 instr 0 feature
'exec_count': non-finite value`` rather than a traceback out of a
linear-algebra kernel three stages later.

Severities rank how a violation participates in the degradation ladder:

=========  ==========================================================
``warn``   advisory only (quality-gate flags); never alters output and
           never refuses, even under the ``strict`` policy
``error``  element-addressed physical violation; degradable (hold the
           nearest collected value), refusal under ``strict``
``fatal``  structural damage local degradation cannot repair (schema
           mismatch, invalid machine profile); escalates straight to
           trace substitution or refusal
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.util.errors import ReproError

#: severity labels, mildest first (index = rank)
SEVERITIES = ("warn", "error", "fatal")


@dataclass(frozen=True)
class GuardViolation:
    """One failed guard check on one artifact (or one of its elements)."""

    artifact: str  #: "trace" | "extrapolated-trace" | "fit" | "machine-profile"
    boundary: str  #: stage boundary crossed, e.g. "collect->fit"
    check: str  #: failed check, e.g. "finite", "rate-range", "rate-monotone"
    message: str
    severity: str = "error"
    block_id: Optional[int] = None
    instr_id: Optional[int] = None
    feature: Optional[str] = None

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; known: {SEVERITIES}"
            )

    @property
    def rank(self) -> int:
        return SEVERITIES.index(self.severity)

    @property
    def element_addressed(self) -> bool:
        """True when the violation is local to one feature element."""
        return (
            self.block_id is not None
            and self.instr_id is not None
            and self.feature is not None
        )

    @property
    def element(self) -> Optional[str]:
        """Best-effort address string (full element or partial)."""
        parts = []
        if self.block_id is not None:
            parts.append(f"block {self.block_id}")
        if self.instr_id is not None:
            parts.append(f"instr {self.instr_id}")
        if self.feature is not None:
            parts.append(f"feature {self.feature!r}")
        return " ".join(parts) or None

    def describe(self) -> str:
        """One line: artifact, element address, problem, boundary."""
        where = f" element {self.element}" if self.element else ""
        return (
            f"{self.artifact}{where}: {self.message} "
            f"[{self.check}, {self.severity}, at {self.boundary}]"
        )

    def to_dict(self) -> dict:
        return {
            "artifact": self.artifact,
            "boundary": self.boundary,
            "check": self.check,
            "message": self.message,
            "severity": self.severity,
            "block_id": self.block_id,
            "instr_id": self.instr_id,
            "feature": self.feature,
        }


def worst_severity(violations: Sequence[GuardViolation]) -> Optional[str]:
    """The highest severity present, or ``None`` for an empty list."""
    if not violations:
        return None
    return SEVERITIES[max(v.rank for v in violations)]


class GuardError(ReproError):
    """A guard refused to let an artifact cross a stage boundary.

    The message leads with the first (most severe) violation's
    element-addressed one-liner so the CLI's ``repro: error:`` line
    points at the exact datum, and carries the full violation list for
    programmatic callers.
    """

    def __init__(
        self,
        violations: Sequence[GuardViolation],
        *,
        stage: str = "guard",
        task_key: Optional[str] = None,
    ):
        self.violations: List[GuardViolation] = sorted(
            violations, key=lambda v: -v.rank
        )
        if self.violations:
            head = self.violations[0].describe()
            more = len(self.violations) - 1
            message = head if not more else f"{head} (+{more} more)"
        else:  # refusal without a specific violation (e.g. no substitute)
            message = "guard refused the artifact"
        super().__init__(message, stage=stage, task_key=task_key)
