"""Per-element fit quality gates.

Three complementary signals on a fitted extrapolation:

- **residual gate** — worst relative training residual of each
  element's selected form; a form that cannot even reproduce its
  training points will not extrapolate.  Advisory.
- **cross-validation gate** — leave-last-out held-out error via
  :mod:`repro.core.crossval`; the extrapolation-direction confidence
  signal the paper lacks.  Advisory; also yields the ``trust_fraction``
  surfaced in the CLI summary and run manifest.
- **cross-engine spot check** — refit a keyed-RNG sample of
  ``(block, instr)`` pairs with the scalar reference engine and compare
  the synthesized vectors against the batched engine's output.  The two
  engines agree to ~1e-9 relative on valid inputs, so any disagreement
  beyond tolerance marks a genuine anomaly: the element is flagged and
  the reference vector is the fallback.  This is the one gate whose
  flags *act* (they cannot fire on clean inputs, so acting preserves
  the clean-run bit-identity invariant).
- **cache-engine spot check** — when collection runs the analytical
  ``reuse`` cache engine, re-simulate a keyed-RNG sample of blocks
  *exactly* on a truncated stream and compare per-level aggregate hit
  rates against the reuse model's evaluation of the identical stream.
  The tolerance covers the model's documented approximation error
  (DESIGN.md §7.8), so a flag marks genuine divergence; the engine
  refuses rather than return silently wrong rates.

Advisory flags (``warn``) are recorded in the
:class:`~repro.guard.degrade.DegradationReport` but never alter output
and never refuse — with three training points, statistical gates flag
clean data too (see DESIGN.md §7.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.canonical import CanonicalForm, fit_all
from repro.core.crossval import cross_validate_traces
from repro.core.extrapolate import synthesize_element_vector
from repro.core.fitting import BatchedFitReport, ElementFit, FitReport
from repro.guard.config import GuardConfig
from repro.trace.tracefile import TraceFile
from repro.util.rng import stream


@dataclass(frozen=True)
class GateFlag:
    """One element flagged by one quality gate."""

    gate: str  #: "residual" | "crossval" | "spot-check"
    block_id: int
    instr_id: int
    feature: str
    score: float  #: the gate's error measure for this element
    threshold: float  #: the limit it exceeded

    def to_dict(self) -> dict:
        return {
            "gate": self.gate,
            "block_id": self.block_id,
            "instr_id": self.instr_id,
            "feature": self.feature,
            "score": self.score,
            "threshold": self.threshold,
        }


def residual_gate(
    report: FitReport, threshold: float
) -> List[GateFlag]:
    """Flag elements whose selected form misses its own training data.

    Vectorized on the batched report (one ``predict_all_forms`` pass
    over the training abscissa); falls back to the per-element loop for
    the reference report.
    """
    flags: List[GateFlag] = []
    if isinstance(report, BatchedFitReport) and report.batch.n_rows:
        batch = report.batch
        # (n_forms, n_rows, n_counts) -> per-row selected-form residuals
        preds = batch.predict_all_forms(batch.x)
        chosen = batch.order[:, 0]
        rows = np.arange(batch.n_rows)
        selected = preds[chosen, rows, :]
        denom = np.maximum(np.abs(batch.Y), 1e-12)
        worst = np.max(np.abs(selected - batch.Y) / denom, axis=1)
        schema = report.schema
        for row in np.nonzero(worst > threshold)[0]:
            pair = report.pair_keys[row // schema.n_features]
            feature = schema.fields[row % schema.n_features]
            flags.append(
                GateFlag(
                    gate="residual",
                    block_id=pair[0],
                    instr_id=pair[1],
                    feature=feature,
                    score=float(worst[row]),
                    threshold=threshold,
                )
            )
        return flags
    for element in report.elements():
        score = element.training_max_rel_error()
        if score > threshold:
            flags.append(
                GateFlag(
                    gate="residual",
                    block_id=element.block_id,
                    instr_id=element.instr_id,
                    feature=element.feature,
                    score=score,
                    threshold=threshold,
                )
            )
    return flags


@dataclass
class CrossvalOutcome:
    """Leave-one-out gate result: flags plus the trust summary."""

    trust_fraction: float
    median_error: float
    n_elements: int
    flags: List[GateFlag] = field(default_factory=list)


def crossval_gate(
    traces: Sequence[TraceFile],
    threshold: float,
    *,
    forms: Sequence[CanonicalForm],
) -> Optional[CrossvalOutcome]:
    """Leave-last-out confidence gate; ``None`` with < 3 traces."""
    if len(traces) < 3:
        return None
    report = cross_validate_traces(traces, forms=forms)
    outcome = CrossvalOutcome(
        trust_fraction=report.trust_fraction(threshold),
        median_error=report.median_error(),
        n_elements=len(report.elements),
    )
    for element in report.flagged(threshold):
        outcome.flags.append(
            GateFlag(
                gate="crossval",
                block_id=element.block_id,
                instr_id=element.instr_id,
                feature=element.feature,
                score=element.held_out_error,
                threshold=threshold,
            )
        )
    return outcome


@dataclass
class SpotCheckOutcome:
    """Cross-engine comparison result over a keyed-RNG pair sample."""

    checked_pairs: List[Tuple[int, int]] = field(default_factory=list)
    flags: List[GateFlag] = field(default_factory=list)
    #: reference vectors per disagreeing (target, pair) — the fallback
    reference: Dict[Tuple[int, Tuple[int, int]], np.ndarray] = field(
        default_factory=dict
    )


def spot_check_gate(
    report: BatchedFitReport,
    synthesized: Dict[int, Dict[Tuple[int, int], np.ndarray]],
    *,
    forms: Sequence[CanonicalForm],
    rate_trust_factor: float,
    config: GuardConfig,
    seed_tokens: Sequence = (),
) -> SpotCheckOutcome:
    """Compare batched-engine output with a reference refit of a sample.

    ``synthesized`` maps each target count to the batched engine's
    per-pair feature vectors.  The pair sample is drawn from the keyed
    stream ``("guard", "spotcheck", *seed_tokens)``, so identical runs
    check identical pairs.
    """
    outcome = SpotCheckOutcome()
    n_pairs = len(report.pair_keys)
    if n_pairs == 0 or config.spot_check_fraction <= 0:
        return outcome
    want = max(
        config.spot_check_min,
        int(np.ceil(config.spot_check_fraction * n_pairs)),
    )
    want = min(want, n_pairs)
    rng = stream("guard", "spotcheck", *seed_tokens, n_pairs)
    sample = sorted(
        int(p) for p in rng.choice(n_pairs, size=want, replace=False)
    )
    schema = report.schema
    x = report.batch.x
    for p in sample:
        bid, k = report.pair_keys[p]
        outcome.checked_pairs.append((bid, k))
        # independent reference refit of every feature of this pair,
        # straight from the training series the batched engine saw
        fits = []
        for j, feature in enumerate(schema.fields):
            row = p * schema.n_features + j
            y = report.batch.Y[row]
            fits.append(
                ElementFit(
                    block_id=bid,
                    instr_id=k,
                    feature=feature,
                    candidates=fit_all(x, y, forms),
                    train_x=x,
                    train_y=y.copy(),
                )
            )
        for target, vectors in synthesized.items():
            ref = synthesize_element_vector(
                fits, schema, target, rate_trust_factor
            )
            actual = vectors[(bid, k)]
            close = np.isclose(
                actual, ref, rtol=config.spot_check_rtol, atol=1e-12
            )
            if close.all():
                continue
            outcome.reference[(target, (bid, k))] = ref
            for j in np.nonzero(~close)[0]:
                denom = max(abs(float(ref[j])), 1e-12)
                outcome.flags.append(
                    GateFlag(
                        gate="spot-check",
                        block_id=bid,
                        instr_id=k,
                        feature=schema.fields[int(j)],
                        score=abs(float(actual[j]) - float(ref[j])) / denom,
                        threshold=config.spot_check_rtol,
                    )
                )
    return outcome


@dataclass
class CacheCheckOutcome:
    """Cross-engine (reuse vs exact) comparison over sampled blocks."""

    checked_blocks: List[int] = field(default_factory=list)
    #: worst absolute per-level rate disagreement seen (flagged or not)
    max_abs_err: float = 0.0
    flags: List[GateFlag] = field(default_factory=list)


def cache_engine_spot_check(
    hierarchy,
    blocks: Sequence[Tuple[object, int]],
    *,
    config: GuardConfig,
    chunk: int = 1 << 16,
    seed_tokens: Sequence = (),
) -> CacheCheckOutcome:
    """Compare the reuse model against an exact replay on sampled blocks.

    ``blocks`` holds ``(BasicBlockSpec, sampled_iterations)`` pairs the
    reuse engine evaluated.  For each keyed-RNG-sampled block the check
    materializes one *truncated* stream (at most
    ``config.cache_check_accesses`` accesses, so the exact replay stays
    cheap), runs it through :class:`HierarchySimulator` — warm pass,
    then a filler sweep standing in for the *other* blocks' program-
    order traffic (the same ``cross_block_lines`` estimate the reuse
    engine charges first touches with), then a measured pass — and
    through the reuse profile math with the identical cross-block term,
    then compares aggregate per-level cumulative hit rates.  Both
    engines consume the identical addresses, so disagreement beyond
    ``cache_check_atol + cache_check_rtol * exact`` is model
    divergence, not sampling noise.
    """
    from repro.cache import reuse as _reuse
    from repro.cache.simulator import HierarchySimulator
    from repro.memstream.generator import interleave_streams

    outcome = CacheCheckOutcome()
    if not blocks or config.cache_check_fraction <= 0:
        return outcome
    want = max(
        config.cache_check_min,
        int(np.ceil(config.cache_check_fraction * len(blocks))),
    )
    want = min(want, len(blocks))
    rng = stream("guard", "cachesim", *seed_tokens, len(blocks))
    sample = sorted(
        int(i) for i in rng.choice(len(blocks), size=want, replace=False)
    )
    line_sizes = _reuse.line_sizes_of(hierarchy)
    full_streams = [
        (
            [m.pattern for m in block.mem_instructions],
            [m.per_iteration * iters for m in block.mem_instructions],
        )
        for block, iters in blocks
    ]
    extras = {
        ls: _reuse.cross_block_lines(full_streams, ls) for ls in line_sizes
    }
    # filler sweep emulating cross-block eviction between warm and
    # measure; eviction saturates at cache capacity, so cap its length
    fill_stride = min(line_sizes)
    fill_cap = 2 * max(g.size_bytes for g in hierarchy.levels)
    fill_base = max(
        int(p.base) + int(p.footprint_bytes())
        for patterns, _ in full_streams
        for p in patterns
    )
    fill_base = -(-fill_base // fill_stride) * fill_stride
    for i in sample:
        block, iters = blocks[i]
        per_iter = max(1, block.mem_accesses_per_iteration)
        check_iters = max(
            1, min(int(iters), config.cache_check_accesses // per_iter)
        )
        patterns = [m.pattern for m in block.mem_instructions]
        counts = [m.per_iteration * check_iters for m in block.mem_instructions]
        skey = _reuse.stream_key(patterns, counts, chunk)
        idx_parts, addr_parts = [], []
        for instr_idx, addrs in interleave_streams(
            patterns, counts, _reuse.profiling_rng(skey), chunk=chunk
        ):
            idx_parts.append(instr_idx)
            addr_parts.append(addrs)
        if not addr_parts:
            continue
        instr_idx = np.concatenate(idx_parts)
        addresses = np.concatenate(addr_parts)
        block_extras = {ls: float(extras[ls][i]) for ls in line_sizes}
        fill_bytes = min(
            fill_cap,
            int(max(block_extras[ls] * ls for ls in line_sizes)),
        )
        sim = HierarchySimulator(hierarchy)
        sim.process(addresses)  # warm to steady state on the same stream
        if fill_bytes > 0:
            sim.process(
                fill_base
                + np.arange(fill_bytes // fill_stride, dtype=np.int64)
                * fill_stride
            )
        sim.clear_counters()
        sim.process(addresses)
        exact = sim.result().cumulative_hit_rates()
        moduli = _reuse.congruence_moduli_for(
            patterns, [g.n_sets for g in hierarchy.levels]
        )
        profiles = {
            ls: _reuse.profile_stream(
                instr_idx, addresses, len(patterns), ls, moduli=moduli
            )
            for ls in line_sizes
        }
        approx = _reuse.aggregate_rates(profiles, hierarchy, block_extras)
        err = np.abs(approx - exact)
        tol = config.cache_check_atol + config.cache_check_rtol * np.abs(exact)
        outcome.checked_blocks.append(block.block_id)
        outcome.max_abs_err = max(outcome.max_abs_err, float(err.max()))
        for j in np.flatnonzero(err > tol):
            outcome.flags.append(
                GateFlag(
                    gate="cache-engine",
                    block_id=block.block_id,
                    instr_id=-1,  # aggregate over the block's instructions
                    feature=f"hit_rate:{hierarchy.levels[int(j)].name}",
                    score=float(err[j]),
                    threshold=float(tol[j]),
                )
            )
    return outcome
