"""Ground-truth hardware timing of a simulated machine.

This is the "physics" of a machine in our reproduction: how long an
access served by each cache level takes, and how fast each class of
floating-point operation issues.  The modeling framework never reads
these numbers directly — it only sees them through measurements
(MultiMAPS probes, §III-A) — but the ground-truth execution simulator
(:mod:`repro.psins.ground_truth`) uses them to produce the "real measured
runtime" that Table I's % error is computed against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.util.validation import check_in_range, check_positive

#: Floating-point operation classes tracked in feature vectors.
FP_OP_KINDS = ("fp_add", "fp_mul", "fp_fma", "fp_div")


@dataclass(frozen=True)
class HardwareTiming:
    """Per-level service times and op issue rates of one machine.

    Parameters
    ----------
    level_time_ns:
        Average service time (ns) of a reference hit at each cache
        level, L1 outward.  Includes pipelining effects, i.e. these are
        *effective throughput* times for streams, not raw latencies.
    memory_time_ns:
        Effective time of a reference served by main memory.
    fp_time_ns:
        Issue time per floating-point op, keyed by op class.
    frequency_ghz:
        Core frequency; used for loop-overhead accounting in the
        ground-truth simulator.
    overlap:
        Fraction of floating-point time hidden under memory time
        (paper §III-B: "some overlap of memory and floating-point
        work").
    """

    level_time_ns: Tuple[float, ...]
    memory_time_ns: float
    fp_time_ns: Dict[str, float] = field(
        default_factory=lambda: {
            "fp_add": 0.35,
            "fp_mul": 0.35,
            "fp_fma": 0.40,
            "fp_div": 5.0,
        }
    )
    frequency_ghz: float = 2.4
    overlap: float = 0.8

    def __post_init__(self):
        if not self.level_time_ns:
            raise ValueError("need at least one cache level time")
        for i, t in enumerate(self.level_time_ns):
            check_positive(f"level_time_ns[{i}]", t)
        check_positive("memory_time_ns", self.memory_time_ns)
        if self.memory_time_ns <= max(self.level_time_ns):
            raise ValueError("memory must be slower than every cache level")
        for kind in FP_OP_KINDS:
            if kind not in self.fp_time_ns:
                raise ValueError(f"missing fp timing for {kind!r}")
            check_positive(f"fp_time_ns[{kind}]", self.fp_time_ns[kind])
        check_positive("frequency_ghz", self.frequency_ghz)
        check_in_range("overlap", self.overlap, 0.0, 1.0)

    @property
    def n_levels(self) -> int:
        return len(self.level_time_ns)

    def service_times_ns(self) -> np.ndarray:
        """Times of [L1, ..., Lk, memory], shape ``(n_levels + 1,)``."""
        return np.array([*self.level_time_ns, self.memory_time_ns])

    def stream_time_ns(
        self, served_counts: Sequence[float], ref_bytes: float = 8.0
    ) -> float:
        """Time for a stream given per-destination served reference counts.

        ``served_counts[j]`` is the number of references served at level
        ``j`` (the last entry being main memory).  This is the hardware
        truth that MultiMAPS probes sample.
        """
        counts = np.asarray(served_counts, dtype=np.float64)
        if counts.shape[0] != self.n_levels + 1:
            raise ValueError(
                f"expected {self.n_levels + 1} served counts, got {counts.shape[0]}"
            )
        return float(counts @ self.service_times_ns())

    def achieved_bandwidth_gbs(
        self, served_counts: Sequence[float], ref_bytes: float = 8.0
    ) -> float:
        """Achieved bandwidth (GB/s) of a stream with the given hit split."""
        counts = np.asarray(served_counts, dtype=np.float64)
        total_refs = counts.sum()
        if total_refs == 0:
            return 0.0
        time_ns = self.stream_time_ns(counts, ref_bytes)
        bytes_moved = total_refs * ref_bytes
        return bytes_moved / time_ns  # bytes/ns == GB/s
