"""The machine profile: what the prediction framework knows about a target.

Combines the MultiMAPS bandwidth surface, floating-point issue rates and
network parameters.  Note the separation of concerns mirroring the paper:

- the *profile* is measurement-derived (MultiMAPS surface);
- the *hardware truth* (:class:`~repro.machine.timing.HardwareTiming`)
  is only used by the ground-truth simulator standing in for "running
  the application for real".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.machine.multimaps import run_multimaps
from repro.machine.network import NetworkParameters
from repro.machine.surface import BandwidthSurface
from repro.machine.timing import FP_OP_KINDS, HardwareTiming


@dataclass
class MachineProfile:
    """Everything the PMaC convolution needs to know about a target system.

    Parameters
    ----------
    name:
        Machine label.
    hierarchy:
        Target cache hierarchy (drives signature collection: the cache
        simulator mimics *this* hierarchy while tracing on the base
        system — cross-architectural prediction, §III-A).
    surface:
        MultiMAPS-fitted bandwidth surface.
    fp_rates_gflops:
        Issue rate per fp op class, GFLOP/s (measured by arithmetic
        microbenchmarks in the real framework; here derived from probe
        loops against the hardware timing).
    network:
        Communication model parameters.
    """

    name: str
    hierarchy: CacheHierarchy
    surface: BandwidthSurface
    fp_rates_gflops: Dict[str, float]
    network: NetworkParameters = field(default_factory=NetworkParameters)

    def memory_bandwidth_gbs(self, cumulative_hit_rates) -> np.ndarray:
        """Bandwidth for references with the given per-level hit rates."""
        return self.surface.bandwidth_gbs(cumulative_hit_rates)

    def fp_time_s(self, counts: Dict[str, float]) -> float:
        """Time to issue the given floating-point op counts, seconds."""
        total = 0.0
        for kind, count in counts.items():
            if count == 0:
                continue
            rate = self.fp_rates_gflops.get(kind)
            if rate is None:
                raise KeyError(f"machine {self.name!r} has no fp rate for {kind!r}")
            total += count / (rate * 1e9)
        return total

    @property
    def n_levels(self) -> int:
        return self.hierarchy.n_levels

    def describe(self) -> str:
        fp = ", ".join(f"{k}={v:.1f}" for k, v in self.fp_rates_gflops.items())
        return (
            f"MachineProfile({self.name})\n"
            f"{self.hierarchy.describe()}\n"
            f"  {self.surface.describe()}\n"
            f"  fp GFLOP/s: {fp}\n"
            f"  network: {self.network}"
        )


def build_profile(
    name: str,
    hierarchy: CacheHierarchy,
    timing: HardwareTiming,
    network: Optional[NetworkParameters] = None,
    *,
    accesses_per_probe: int = 100_000,
) -> MachineProfile:
    """Measure a machine profile from a simulated machine.

    Runs the MultiMAPS sweep against the machine's hierarchy + hardware
    timing and derives fp issue rates from the timing's issue times
    (standing in for the framework's arithmetic microbenchmarks).
    """
    mm = run_multimaps(
        hierarchy, timing, accesses_per_probe=accesses_per_probe
    )
    surface = mm.surface()
    # ops/ns == Gop/s, so GFLOP/s is simply the reciprocal issue time
    fp_rates = {kind: 1.0 / timing.fp_time_ns[kind] for kind in FP_OP_KINDS}
    return MachineProfile(
        name=name,
        hierarchy=hierarchy,
        surface=surface,
        fp_rates_gflops=fp_rates,
        network=network or NetworkParameters(),
    )
