"""MultiMAPS: memory-bandwidth probing of a (simulated) machine.

The real MultiMAPS benchmark [Snavely et al., SC'02] sweeps working-set
sizes and strides, timing a load loop for each combination; plotted
against the cache hit rates each probe induces, the measurements form the
bandwidth surface of Fig. 1.

Here the "machine" is a :class:`~repro.cache.hierarchy.CacheHierarchy`
plus :class:`~repro.machine.timing.HardwareTiming`.  Each probe generates
a strided address stream, runs it through the cache simulator to find
where references are served, and asks the hardware timing for the
achieved bandwidth — the same observe-don't-read discipline as the real
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.simulator import HierarchySimulator
from repro.machine.surface import BandwidthSurface
from repro.machine.timing import HardwareTiming
from repro.memstream.patterns import StridedPattern
from repro.util.rng import RngStream, stream
from repro.util.units import KB
from repro.util.validation import check_positive

#: Default working-set sweep: 4KB up to 32MB, covering every level of all
#: predefined hierarchies plus main memory.
DEFAULT_WORKING_SETS = tuple(
    int(4 * KB * 2 ** (i / 2.0)) for i in range(0, 27)
)

#: Default stride sweep in elements (8-byte doubles): unit stride through
#: a full cache line and beyond.
DEFAULT_STRIDES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class MultiMAPSProbe:
    """One probe point of the sweep."""

    working_set_bytes: int
    stride_elements: int
    element_size: int = 8

    def __post_init__(self):
        check_positive("working_set_bytes", self.working_set_bytes)
        check_positive("stride_elements", self.stride_elements)
        check_positive("element_size", self.element_size)


@dataclass
class MultiMAPSResult:
    """Sweep output: one row per probe.

    ``hit_rates[i]`` are the cumulative per-level hit rates probe ``i``
    induced on the hierarchy; ``bandwidths_gbs[i]`` is its achieved
    bandwidth.  ``surface()`` fits the interpolating model.
    """

    hierarchy_name: str
    probes: List[MultiMAPSProbe]
    hit_rates: np.ndarray
    bandwidths_gbs: np.ndarray

    def surface(self) -> BandwidthSurface:
        """Fit the bandwidth surface from this sweep's samples."""
        return BandwidthSurface.fit(
            self.hit_rates, self.bandwidths_gbs, name=self.hierarchy_name
        )

    def table_rows(self) -> List[tuple]:
        """(working set, stride, hit rates..., bandwidth) rows for reports."""
        rows = []
        for probe, rates, bw in zip(self.probes, self.hit_rates, self.bandwidths_gbs):
            rows.append(
                (
                    probe.working_set_bytes,
                    probe.stride_elements,
                    *(float(r) for r in rates),
                    float(bw),
                )
            )
        return rows


def run_multimaps(
    hierarchy: CacheHierarchy,
    timing: HardwareTiming,
    *,
    working_sets: Sequence[int] = DEFAULT_WORKING_SETS,
    strides: Sequence[int] = DEFAULT_STRIDES,
    accesses_per_probe: int = 200_000,
    rng: Optional[RngStream] = None,
    chunk: int = 1 << 16,
) -> MultiMAPSResult:
    """Run the MultiMAPS sweep against a simulated machine.

    Parameters
    ----------
    hierarchy, timing:
        The machine under test.
    working_sets, strides:
        Sweep axes.
    accesses_per_probe:
        Dynamic accesses per probe; each probe makes several passes over
        its working set so steady-state (warm) hit rates dominate the
        cold-start transient, like the real benchmark's repeat loops.
    """
    if timing.n_levels != hierarchy.n_levels:
        raise ValueError(
            "timing level count does not match hierarchy "
            f"({timing.n_levels} vs {hierarchy.n_levels})"
        )
    if rng is None:
        rng = stream("multimaps", hierarchy.name)
    probes: List[MultiMAPSProbe] = []
    all_rates: List[np.ndarray] = []
    bandwidths: List[float] = []
    for ws in working_sets:
        for stride in strides:
            probe = MultiMAPSProbe(working_set_bytes=int(ws), stride_elements=int(stride))
            pattern = StridedPattern(
                region_bytes=max(int(ws), probe.element_size),
                element_size=probe.element_size,
                stride_elements=int(stride),
            )
            sim = HierarchySimulator(hierarchy)
            # warm-up pass over the working set, excluded from measurement
            warm = min(pattern.n_elements, accesses_per_probe)
            sim.process(pattern.addresses(0, warm, rng))
            sim.clear_counters()  # keep caches warm, measure steady state
            produced = warm
            while produced < warm + accesses_per_probe:
                n = min(chunk, warm + accesses_per_probe - produced)
                sim.process(pattern.addresses(produced, n, rng))
                produced += n
            result = sim.result()
            hits = np.array([lv.hits for lv in result.levels])
            total = result.total_accesses
            served = np.append(hits, total - hits.sum()).astype(np.float64)
            rates = np.cumsum(hits) / total
            bw = timing.achieved_bandwidth_gbs(served, ref_bytes=probe.element_size)
            probes.append(probe)
            all_rates.append(rates)
            bandwidths.append(bw)
    return MultiMAPSResult(
        hierarchy_name=hierarchy.name,
        probes=probes,
        hit_rates=np.array(all_rates),
        bandwidths_gbs=np.array(bandwidths),
    )
