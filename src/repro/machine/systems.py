"""Named simulated machines.

Each machine bundles the cache hierarchy (from
:mod:`repro.cache.configs`), a ground-truth hardware timing, and network
parameters.  ``get_machine`` builds the full measurement-derived
:class:`~repro.machine.profile.MachineProfile` (runs MultiMAPS); profiles
are cached per process because probing is the expensive step, like
keeping machine profiles on disk in the real framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.cache import configs as cache_configs
from repro.cache.hierarchy import CacheHierarchy
from repro.machine.network import NetworkParameters
from repro.machine.profile import MachineProfile, build_profile
from repro.machine.timing import HardwareTiming


@dataclass(frozen=True)
class MachineSpec:
    """Hardware definition of a simulated machine (pre-measurement)."""

    name: str
    hierarchy: CacheHierarchy
    timing: HardwareTiming
    network: NetworkParameters


def _opteron_2level_spec() -> MachineSpec:
    return MachineSpec(
        name="Opteron-2L",
        hierarchy=cache_configs.opteron_2level(),
        timing=HardwareTiming(
            level_time_ns=(0.75, 3.0),
            memory_time_ns=28.0,
            frequency_ghz=2.2,
        ),
        network=NetworkParameters(latency_us=2.0, bandwidth_gbs=2.0),
    )


def _cray_xt5_spec() -> MachineSpec:
    return MachineSpec(
        name="CrayXT5",
        hierarchy=cache_configs.cray_xt5(),
        timing=HardwareTiming(
            level_time_ns=(0.7, 2.5, 8.0),
            memory_time_ns=30.0,
            frequency_ghz=2.6,
        ),
        network=NetworkParameters(
            latency_us=6.0, bandwidth_gbs=1.6, half_bandwidth_bytes=16384
        ),
    )


def _blue_waters_p1_spec() -> MachineSpec:
    return MachineSpec(
        name="BlueWatersP1",
        hierarchy=cache_configs.blue_waters_p1(),
        timing=HardwareTiming(
            level_time_ns=(0.5, 2.0, 6.0),
            memory_time_ns=16.0,
            fp_time_ns={
                "fp_add": 0.25,
                "fp_mul": 0.25,
                "fp_fma": 0.28,
                "fp_div": 4.0,
            },
            frequency_ghz=3.8,
        ),
        network=NetworkParameters(
            latency_us=1.2, bandwidth_gbs=9.0, half_bandwidth_bytes=8192
        ),
    )


def _system_a_spec() -> MachineSpec:
    bw = _blue_waters_p1_spec()
    return MachineSpec(
        name="SystemA-12KB-L1",
        hierarchy=cache_configs.system_a(),
        timing=bw.timing,
        network=bw.network,
    )


def _system_b_spec() -> MachineSpec:
    bw = _blue_waters_p1_spec()
    return MachineSpec(
        name="SystemB-56KB-L1",
        hierarchy=cache_configs.system_b(),
        timing=bw.timing,
        network=bw.network,
    )


MACHINE_BUILDERS: Dict[str, Callable[[], MachineSpec]] = {
    "opteron_2level": _opteron_2level_spec,
    "cray_xt5": _cray_xt5_spec,
    "blue_waters_p1": _blue_waters_p1_spec,
    "system_a": _system_a_spec,
    "system_b": _system_b_spec,
}

_SPEC_CACHE: Dict[str, MachineSpec] = {}
_PROFILE_CACHE: Dict[Tuple[str, int], MachineProfile] = {}


def get_spec(name: str) -> MachineSpec:
    """Look up a machine's hardware definition."""
    if name not in MACHINE_BUILDERS:
        known = ", ".join(sorted(MACHINE_BUILDERS))
        raise KeyError(f"unknown machine {name!r}; known: {known}")
    if name not in _SPEC_CACHE:
        _SPEC_CACHE[name] = MACHINE_BUILDERS[name]()
    return _SPEC_CACHE[name]


def get_machine(name: str, *, accesses_per_probe: int = 100_000) -> MachineProfile:
    """Build (and cache) the measured profile for a named machine."""
    key = (name, accesses_per_probe)
    if key not in _PROFILE_CACHE:
        spec = get_spec(name)
        _PROFILE_CACHE[key] = build_profile(
            spec.name,
            spec.hierarchy,
            spec.timing,
            spec.network,
            accesses_per_probe=accesses_per_probe,
        )
    return _PROFILE_CACHE[key]
