"""The MultiMAPS bandwidth surface and its interpolation.

MultiMAPS produces scattered samples ``(hit rates per level) ->
(achieved bandwidth)``; Fig. 1 plots this surface for a two-level
Opteron.  The convolution (Eq. 1) needs bandwidth at *arbitrary* hit-rate
combinations — wherever a basic block lands — so the surface must
interpolate.

We fit the physically-motivated reciprocal-throughput model

    1 / BW(h) = sum_j f_j(h) * c_j

where ``f_j`` is the fraction of references served at level ``j``
(derived from cumulative hit rates, the last "level" being main memory)
and ``c_j >= 0`` are per-level reciprocal bandwidth coefficients
recovered from the samples by non-negative least squares.  This is
exactly the structure of Eq. 1's ``memory_BW_j`` denominators, learned
from probe data rather than read from a datasheet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from repro.util.validation import check_finite


def served_fractions(cumulative_hit_rates: np.ndarray) -> np.ndarray:
    """Convert cumulative hit rates into per-destination served fractions.

    Input shape ``(..., n_levels)`` with values in ``[0, 1]``,
    non-decreasing along the last axis; output shape
    ``(..., n_levels + 1)`` whose last entry is the main-memory fraction.
    """
    h = np.asarray(cumulative_hit_rates, dtype=np.float64)
    h = np.clip(h, 0.0, 1.0)
    # enforce monotonicity defensively (extrapolated rates may jitter)
    h = np.maximum.accumulate(h, axis=-1)
    first = h[..., :1]
    diffs = np.diff(h, axis=-1)
    mem = 1.0 - h[..., -1:]
    return np.concatenate([first, diffs, mem], axis=-1)


@dataclass
class BandwidthSurface:
    """Interpolated bandwidth-vs-hit-rates surface for one machine.

    Parameters
    ----------
    sample_hit_rates:
        ``(n_samples, n_levels)`` cumulative hit rates of each probe.
    sample_bandwidths_gbs:
        Achieved bandwidth of each probe, GB/s.
    coefficients:
        ``(n_levels + 1,)`` fitted reciprocal-throughput coefficients
        (ns per byte served at each destination).
    name:
        Label, usually the machine name.
    """

    sample_hit_rates: np.ndarray
    sample_bandwidths_gbs: np.ndarray
    coefficients: np.ndarray
    name: str = "surface"

    @classmethod
    def fit(
        cls,
        hit_rates: np.ndarray,
        bandwidths_gbs: np.ndarray,
        name: str = "surface",
    ) -> "BandwidthSurface":
        """Fit the reciprocal-throughput model to probe samples.

        Weighted so that relative (not absolute) bandwidth errors are
        minimized: a 10% error at 1 GB/s matters as much as at 50 GB/s.
        """
        hit_rates = np.atleast_2d(np.asarray(hit_rates, dtype=np.float64))
        bandwidths = np.asarray(bandwidths_gbs, dtype=np.float64)
        check_finite("hit_rates", hit_rates)
        check_finite("bandwidths_gbs", bandwidths)
        if hit_rates.shape[0] != bandwidths.shape[0]:
            raise ValueError("sample count mismatch between hit rates and bandwidths")
        if np.any(bandwidths <= 0):
            raise ValueError("bandwidth samples must be positive")
        fractions = served_fractions(hit_rates)
        # solve fractions @ c ~= 1/bw, weighting rows by bw (relative error)
        target = 1.0 / bandwidths
        weights = bandwidths
        a = fractions * weights[:, None]
        b = target * weights
        coeffs, _residual = nnls(a, b)
        return cls(
            sample_hit_rates=hit_rates,
            sample_bandwidths_gbs=bandwidths,
            coefficients=coeffs,
            name=name,
        )

    @property
    def n_levels(self) -> int:
        return self.sample_hit_rates.shape[1]

    def bandwidth_gbs(self, cumulative_hit_rates) -> np.ndarray:
        """Interpolated bandwidth at the given hit-rate point(s).

        Accepts shape ``(n_levels,)`` or ``(m, n_levels)``; returns a
        scalar array or ``(m,)`` array respectively.
        """
        h = np.asarray(cumulative_hit_rates, dtype=np.float64)
        scalar = h.ndim == 1
        fractions = served_fractions(np.atleast_2d(h))
        inv = fractions @ self.coefficients
        # a degenerate fit (all coefficients zero) would divide by zero;
        # fall back to the slowest sample, which is always conservative.
        floor = 1.0 / self.sample_bandwidths_gbs.max()
        inv = np.maximum(inv, floor * 1e-6)
        bw = 1.0 / inv
        return bw[0] if scalar else bw

    def fit_quality(self) -> float:
        """Median absolute relative error of the fit over its own samples."""
        predicted = self.bandwidth_gbs(self.sample_hit_rates)
        rel = np.abs(predicted - self.sample_bandwidths_gbs) / self.sample_bandwidths_gbs
        return float(np.median(rel))

    def describe(self) -> str:
        names = [f"L{i + 1}" for i in range(self.n_levels)] + ["mem"]
        parts = ", ".join(
            f"{n}={1.0 / c:.1f}GB/s" if c > 0 else f"{n}=inf"
            for n, c in zip(names, self.coefficients)
        )
        return f"BandwidthSurface({self.name}: {parts})"
