"""Network parameters and message-cost models.

The PMaC framework's communication model maps each MPI event to a cost on
the target network.  We use the standard postal (alpha-beta) model with a
per-message-size bandwidth curve (small messages achieve a fraction of
peak, as real probes show) and logarithmic tree models for collectives —
the level of detail PSiNS-class replay simulators use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class NetworkParameters:
    """Point-to-point and collective cost parameters for one machine.

    Parameters
    ----------
    latency_us:
        Zero-byte one-way message latency, microseconds.
    bandwidth_gbs:
        Asymptotic large-message bandwidth, GB/s.
    half_bandwidth_bytes:
        Message size at which achieved bandwidth is half of peak
        (parameterizes the small-message penalty curve).
    per_hop_us:
        Additional latency per tree level in collectives.
    send_overhead_us:
        Sender-side CPU overhead of posting a (buffered) send.
    """

    latency_us: float = 1.5
    bandwidth_gbs: float = 5.0
    half_bandwidth_bytes: int = 8192
    per_hop_us: float = 0.5
    send_overhead_us: float = 0.3

    def __post_init__(self):
        check_positive("latency_us", self.latency_us)
        check_positive("bandwidth_gbs", self.bandwidth_gbs)
        check_positive("half_bandwidth_bytes", self.half_bandwidth_bytes)
        check_in_range("per_hop_us", self.per_hop_us, low=0.0)
        check_in_range("send_overhead_us", self.send_overhead_us, low=0.0)

    def effective_bandwidth_gbs(self, message_bytes: int) -> float:
        """Achieved bandwidth for a message of the given size."""
        if message_bytes <= 0:
            return self.bandwidth_gbs
        frac = message_bytes / (message_bytes + self.half_bandwidth_bytes)
        return self.bandwidth_gbs * max(frac, 1e-9)

    def p2p_time_s(self, message_bytes: int) -> float:
        """One point-to-point message transfer time in seconds."""
        if message_bytes < 0:
            raise ValueError(f"negative message size: {message_bytes}")
        transfer_ns = message_bytes / self.effective_bandwidth_gbs(max(message_bytes, 1))
        return self.latency_us * 1e-6 + transfer_ns * 1e-9

    def _tree_depth(self, n_ranks: int) -> int:
        return max(1, math.ceil(math.log2(max(n_ranks, 2))))

    def barrier_time_s(self, n_ranks: int) -> float:
        """Dissemination barrier: O(log p) rounds of latency."""
        depth = self._tree_depth(n_ranks)
        return depth * (self.latency_us + self.per_hop_us) * 1e-6

    def allreduce_time_s(self, n_ranks: int, message_bytes: int) -> float:
        """Recursive-doubling allreduce: log p rounds, full payload each."""
        depth = self._tree_depth(n_ranks)
        return depth * (
            (self.latency_us + self.per_hop_us) * 1e-6
            + self.p2p_time_s(message_bytes)
            - self.latency_us * 1e-6
        ) + self.latency_us * 1e-6

    def broadcast_time_s(self, n_ranks: int, message_bytes: int) -> float:
        """Binomial-tree broadcast."""
        depth = self._tree_depth(n_ranks)
        return depth * self.p2p_time_s(message_bytes)

    def reduce_time_s(self, n_ranks: int, message_bytes: int) -> float:
        """Binomial-tree reduce (same shape as broadcast)."""
        return self.broadcast_time_s(n_ranks, message_bytes)

    def alltoall_time_s(self, n_ranks: int, message_bytes: int) -> float:
        """Pairwise-exchange alltoall: p-1 rounds of p2p."""
        rounds = max(n_ranks - 1, 1)
        return rounds * self.p2p_time_s(message_bytes)

    def allgather_time_s(self, n_ranks: int, message_bytes: int) -> float:
        """Ring allgather: p-1 rounds, per-rank payload each round."""
        rounds = max(n_ranks - 1, 1)
        return rounds * self.p2p_time_s(message_bytes)
