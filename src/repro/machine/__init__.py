"""Machine profiles: the PMaC framework's description of a target system.

A machine profile captures "the rates at which a machine can perform
certain fundamental operations" (paper §III): memory bandwidth as a
function of where references are served in the hierarchy (measured by the
MultiMAPS probe, Fig. 1), floating-point issue rates, and network
latency/bandwidth for the communication model.

The *hardware truth* of a simulated machine lives in
:class:`repro.machine.timing.HardwareTiming`; MultiMAPS only ever observes
achieved bandwidths through probes, exactly as the real benchmark cannot
see datasheet numbers — it measures.
"""

from repro.machine.timing import HardwareTiming
from repro.machine.surface import BandwidthSurface
from repro.machine.multimaps import MultiMAPSProbe, MultiMAPSResult, run_multimaps
from repro.machine.network import NetworkParameters
from repro.machine.profile import MachineProfile
from repro.machine.systems import get_machine, MACHINE_BUILDERS

__all__ = [
    "HardwareTiming",
    "BandwidthSurface",
    "MultiMAPSProbe",
    "MultiMAPSResult",
    "run_multimaps",
    "NetworkParameters",
    "MachineProfile",
    "get_machine",
    "MACHINE_BUILDERS",
]
