"""Lightweight MPI profiling: find the most computationally demanding task.

The paper identifies the trace-worthy task "using a lightweight MPI
profiling library based on the PSiNSTracer package" (§IV): a cheap run
that measures per-task computation time without full tracing.  Our
equivalent weighs each rank's compute events by nominal per-operation
costs — no cache simulation, no address streams — and ranks tasks by that
estimate.  Only the *ordering* matters downstream (which rank gets
traced), so nominal costs suffice, exactly as wall-clock on the base
system suffices in the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.instrument.program import BasicBlockSpec, Program
from repro.simmpi.events import ComputeEvent
from repro.simmpi.runtime import Job

#: Nominal base-system costs used only for ranking tasks.
_NOMINAL_MEM_NS = 4.0
_NOMINAL_FLOP_NS = 0.5


def _block_iteration_cost_ns(block: BasicBlockSpec) -> float:
    mem = block.mem_accesses_per_iteration
    fp = sum(f.ops_per_iteration for f in block.fp_instructions)
    return mem * _NOMINAL_MEM_NS + fp * _NOMINAL_FLOP_NS


@dataclass
class LightweightProfile:
    """Per-rank computation-time estimates from the profiling run."""

    app: str
    n_ranks: int
    compute_times_s: Dict[int, float]

    def slowest_rank(self) -> int:
        """Rank with the largest estimated computation time.

        Ties break toward the lower rank for determinism.
        """
        return max(
            self.compute_times_s,
            key=lambda r: (self.compute_times_s[r], -r),
        )

    def load_imbalance(self) -> float:
        """max/mean computation-time ratio (1.0 == perfectly balanced)."""
        times = list(self.compute_times_s.values())
        mean = sum(times) / len(times)
        return max(times) / mean if mean > 0 else 1.0


def profile_job(
    job: Job, program_for_rank: Callable[[int], Program]
) -> LightweightProfile:
    """Estimate per-rank computation time for a job.

    Parameters
    ----------
    job:
        The recorded job.
    program_for_rank:
        Maps a rank to its program (for per-iteration block weights).
    """
    compute_times: Dict[int, float] = {}
    for script in job.scripts:
        program = program_for_rank(script.rank)
        cost_cache: Dict[int, float] = {}
        total_ns = 0.0
        for ev in script.events:
            if not isinstance(ev, ComputeEvent):
                continue
            if ev.block_id not in cost_cache:
                cost_cache[ev.block_id] = _block_iteration_cost_ns(
                    program.block(ev.block_id)
                )
            total_ns += cost_cache[ev.block_id] * ev.iterations
        compute_times[script.rank] = total_ns * 1e-9
    return LightweightProfile(
        app=job.app, n_ranks=job.n_ranks, compute_times_s=compute_times
    )
