"""Event types recorded by SimMPI rank scripts.

Events are the vocabulary shared by the runtime (which records them), the
profiler (which weighs compute events) and the PSiNS replay engine (which
assigns them times).  All events are immutable value objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.util.validation import check_in_range

#: Collective operations the replay network model knows how to cost.
COLLECTIVE_OPS = (
    "barrier",
    "allreduce",
    "reduce",
    "broadcast",
    "alltoall",
    "allgather",
)


@dataclass(frozen=True)
class ComputeEvent:
    """A computation phase: ``iterations`` executions of one basic block.

    The block id refers to the rank's :class:`~repro.instrument.program.
    Program`; the replay engine converts iterations to seconds using a
    per-iteration block cost calibrated from a trace file.
    """

    block_id: int
    iterations: int

    def __post_init__(self):
        check_in_range("iterations", self.iterations, low=0)


@dataclass(frozen=True)
class SendEvent:
    """Post a point-to-point message (buffered, non-blocking completion)."""

    dest: int
    nbytes: int
    tag: int = 0

    def __post_init__(self):
        check_in_range("dest", self.dest, low=0)
        check_in_range("nbytes", self.nbytes, low=0)


@dataclass(frozen=True)
class RecvEvent:
    """Blocking receive of a matching message."""

    src: int
    nbytes: int
    tag: int = 0

    def __post_init__(self):
        check_in_range("src", self.src, low=0)
        check_in_range("nbytes", self.nbytes, low=0)


@dataclass(frozen=True)
class CollectiveEvent:
    """A collective over the whole communicator.

    ``nbytes`` is the per-rank payload (the cost model knows each
    collective's communication pattern).
    """

    op: str
    nbytes: int = 0

    def __post_init__(self):
        if self.op not in COLLECTIVE_OPS:
            raise ValueError(
                f"unknown collective {self.op!r}; known: {', '.join(COLLECTIVE_OPS)}"
            )
        check_in_range("nbytes", self.nbytes, low=0)


def BarrierEvent() -> CollectiveEvent:
    """Convenience constructor for a barrier."""
    return CollectiveEvent(op="barrier", nbytes=0)


Event = Union[ComputeEvent, SendEvent, RecvEvent, CollectiveEvent]
