"""The communicator object rank scripts program against.

API shape follows mpi4py's lowercase conventions (``send``/``recv``/
``allreduce``/...) so that app proxies read like the MPI codes they stand
in for, with one addition: :meth:`SimComm.compute` marks a computation
phase (``iterations`` of a named basic block) — the "work done on the
processor in between communication events" the PMaC computation model
covers (§III).
"""

from __future__ import annotations

from typing import List

from repro.simmpi.events import (
    CollectiveEvent,
    ComputeEvent,
    Event,
    RecvEvent,
    SendEvent,
)


class SimComm:
    """Event-recording communicator for one rank.

    Parameters
    ----------
    rank, size:
        This process's rank and the communicator size.
    """

    def __init__(self, rank: int, size: int):
        if size <= 0:
            raise ValueError(f"communicator size must be positive, got {size}")
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self.events: List[Event] = []

    # -- introspection (mpi4py-style) -----------------------------------

    def get_rank(self) -> int:
        return self.rank

    def get_size(self) -> int:
        return self.size

    # -- computation phases ---------------------------------------------

    def compute(self, block_id: int, iterations: int) -> None:
        """Record ``iterations`` executions of basic block ``block_id``."""
        if iterations > 0:
            self.events.append(ComputeEvent(block_id=block_id, iterations=iterations))

    # -- point-to-point ---------------------------------------------------

    def send(self, dest: int, nbytes: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"send dest {dest} out of range (size {self.size})")
        if dest == self.rank:
            raise ValueError("self-sends are not modeled")
        self.events.append(SendEvent(dest=dest, nbytes=nbytes, tag=tag))

    def recv(self, src: int, nbytes: int, tag: int = 0) -> None:
        if not 0 <= src < self.size:
            raise ValueError(f"recv src {src} out of range (size {self.size})")
        if src == self.rank:
            raise ValueError("self-receives are not modeled")
        self.events.append(RecvEvent(src=src, nbytes=nbytes, tag=tag))

    def sendrecv(
        self, dest: int, send_bytes: int, src: int, recv_bytes: int, tag: int = 0
    ) -> None:
        """Combined exchange, posted send-first (deadlock-free pairwise)."""
        self.send(dest, send_bytes, tag=tag)
        self.recv(src, recv_bytes, tag=tag)

    # -- collectives ------------------------------------------------------

    def barrier(self) -> None:
        self.events.append(CollectiveEvent(op="barrier"))

    def allreduce(self, nbytes: int) -> None:
        self.events.append(CollectiveEvent(op="allreduce", nbytes=nbytes))

    def reduce(self, nbytes: int) -> None:
        self.events.append(CollectiveEvent(op="reduce", nbytes=nbytes))

    def broadcast(self, nbytes: int) -> None:
        self.events.append(CollectiveEvent(op="broadcast", nbytes=nbytes))

    def alltoall(self, nbytes_per_rank: int) -> None:
        self.events.append(CollectiveEvent(op="alltoall", nbytes=nbytes_per_rank))

    def allgather(self, nbytes_per_rank: int) -> None:
        self.events.append(CollectiveEvent(op="allgather", nbytes=nbytes_per_rank))
