"""SimMPI: a deterministic simulated MPI runtime.

The paper's pipeline needs per-rank *event traces* (computation phases
separated by communication events) and a lightweight profiling pass that
identifies the most computationally demanding MPI task (the
PSiNSTracer-based step of §IV).  Real MPI runs at 96–8192 ranks are not
available here, so SimMPI executes per-rank script functions written
against an mpi4py-like API and records their communication/computation
events; the PSiNS replay engine (:mod:`repro.psins.replay`) later assigns
times to those events.

Rank functions are plain Python callables executed one rank at a time —
apps are SPMD and deterministic, so no actual concurrency is needed to
reconstruct each rank's event sequence.
"""

from repro.simmpi.events import (
    BarrierEvent,
    CollectiveEvent,
    ComputeEvent,
    Event,
    RecvEvent,
    SendEvent,
)
from repro.simmpi.comm import SimComm
from repro.simmpi.runtime import Job, RankScript, run_job, verify_job
from repro.simmpi.profiler import LightweightProfile, profile_job

__all__ = [
    "Event",
    "ComputeEvent",
    "SendEvent",
    "RecvEvent",
    "CollectiveEvent",
    "BarrierEvent",
    "SimComm",
    "RankScript",
    "Job",
    "run_job",
    "verify_job",
    "LightweightProfile",
    "profile_job",
]
