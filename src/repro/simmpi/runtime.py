"""SimMPI job construction and static verification.

``run_job`` executes a rank function once per rank, collecting each
rank's event script.  ``verify_job`` statically checks communication
consistency — every send matched by a receive, collectives issued in the
same order everywhere — which is also what keeps the replay engine
deadlock-free.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.simmpi.comm import SimComm
from repro.simmpi.events import CollectiveEvent, ComputeEvent, RecvEvent, SendEvent


@dataclass
class RankScript:
    """One rank's recorded event sequence."""

    rank: int
    events: List = field(default_factory=list)

    @property
    def n_events(self) -> int:
        return len(self.events)

    def compute_events(self) -> List[ComputeEvent]:
        return [e for e in self.events if isinstance(e, ComputeEvent)]


@dataclass
class Job:
    """A complete simulated MPI job at one core count.

    Parameters
    ----------
    app:
        Application name.
    n_ranks:
        Core count.
    scripts:
        Per-rank event scripts (index == rank).
    """

    app: str
    n_ranks: int
    scripts: List[RankScript]

    def __post_init__(self):
        if len(self.scripts) != self.n_ranks:
            raise ValueError(
                f"expected {self.n_ranks} scripts, got {len(self.scripts)}"
            )
        for i, script in enumerate(self.scripts):
            if script.rank != i:
                raise ValueError(f"script {i} has rank {script.rank}")

    def script(self, rank: int) -> RankScript:
        return self.scripts[rank]


def run_job(
    app: str, n_ranks: int, rank_fn: Callable[[SimComm], None]
) -> Job:
    """Execute ``rank_fn`` for every rank; collect scripts.

    ``rank_fn`` receives a :class:`~repro.simmpi.comm.SimComm` and must
    be deterministic in ``(comm.rank, comm.size)`` — the SPMD contract.
    """
    scripts = []
    for rank in range(n_ranks):
        comm = SimComm(rank, n_ranks)
        rank_fn(comm)
        scripts.append(RankScript(rank=rank, events=comm.events))
    return Job(app=app, n_ranks=n_ranks, scripts=scripts)


class JobVerificationError(ValueError):
    """Raised when a job's communication structure is inconsistent."""


def verify_job(job: Job) -> None:
    """Statically check the job's communication consistency.

    - every ``(src, dest, tag)`` send count equals the matching receive
      count;
    - every rank issues the same sequence of collectives (op and size).

    Raises :class:`JobVerificationError` with a diagnostic on failure.
    """
    sends: Counter = Counter()
    recvs: Counter = Counter()
    collective_seqs: List[Tuple[Tuple[str, int], ...]] = []
    for script in job.scripts:
        seq = []
        for ev in script.events:
            if isinstance(ev, SendEvent):
                sends[(script.rank, ev.dest, ev.tag)] += 1
            elif isinstance(ev, RecvEvent):
                recvs[(ev.src, script.rank, ev.tag)] += 1
            elif isinstance(ev, CollectiveEvent):
                seq.append((ev.op, ev.nbytes))
        collective_seqs.append(tuple(seq))
    unmatched_sends = sends - recvs
    unmatched_recvs = recvs - sends
    if unmatched_sends:
        key, count = next(iter(unmatched_sends.items()))
        raise JobVerificationError(
            f"{job.app}: {count} unmatched send(s) on (src, dest, tag)={key}"
        )
    if unmatched_recvs:
        key, count = next(iter(unmatched_recvs.items()))
        raise JobVerificationError(
            f"{job.app}: {count} unmatched recv(s) on (src, dest, tag)={key}"
        )
    first = collective_seqs[0]
    for rank, seq in enumerate(collective_seqs[1:], start=1):
        if seq != first:
            raise JobVerificationError(
                f"{job.app}: rank {rank} collective sequence differs from rank 0 "
                f"({len(seq)} vs {len(first)} collectives or mismatched ops)"
            )
