#!/usr/bin/env python3
"""Scaling study of the SPECFEM3D proxy: where does the data live?

The scenario motivating the paper's Tables II and III: an analyst wants
to know how a seismic code's memory behavior evolves as it strong-scales
on a target system — and how a different L1 design would change it —
without tracing at scale (or the target even existing).

This script:
1. traces the SPECFEM3D proxy at three affordable core counts;
2. extrapolates the signature to a ladder of larger counts;
3. prints how each basic block's target-system hit rates evolve
   (Table II style);
4. repeats the collection against two what-if targets differing only in
   L1 size, showing which blocks are L1-sensitive (Table III style).

Uses a reduced mesh so the study runs in a couple of minutes; pass
--paper-scale to use the paper's core counts (96/384/1536 -> 6144).

Run:  python examples/seismic_scaling_study.py [--paper-scale]
"""

import argparse

from repro import collect_signature, extrapolate_trace, get_machine
from repro.apps.specfem3d import SpecFEM3DProxy, SpecFEMParams
from repro.cache.configs import system_a, system_b
from repro.util.tables import Table


def hit_rate_evolution(app, machine, train_counts, targets):
    """Table II-style: per-block hit-rate trajectories."""
    traces = [
        collect_signature(app, p, machine.hierarchy).slowest_trace()
        for p in train_counts
    ]
    schema = traces[0].schema
    rows = {}  # (block, level) -> series over all counts
    for trace in traces:
        for block in trace.sorted_blocks():
            agg = block.aggregate(schema)
            for level in machine.hierarchy.level_names:
                rows.setdefault(
                    (block.location.function, level), []
                ).append(100 * agg[f"hit_rate_{level}"])
    for target in targets:
        extrap = extrapolate_trace(traces, target).trace
        for block in extrap.sorted_blocks():
            agg = block.aggregate(schema)
            for level in machine.hierarchy.level_names:
                rows[(block.location.function, level)].append(
                    100 * agg[f"hit_rate_{level}"]
                )
    counts = [str(c) for c in train_counts] + [f"{t}*" for t in targets]
    table = Table(
        columns=["Block", "Level", *counts],
        title="Hit-rate evolution on the target system "
        "(*: extrapolated, not collected)",
        float_fmt=".1f",
    )
    for (function, level), series in sorted(rows.items()):
        table.add_row(function, level, *series)
    return table


def l1_whatif(app, counts):
    """Table III-style: L1 sensitivity of each block on two targets."""
    table = Table(
        columns=["Block", "System", *(str(c) for c in counts)],
        title="L1 hit rate (%) on two what-if targets (12KB vs 56KB L1)",
        float_fmt=".1f",
    )
    for label, hierarchy in (("A 12KB", system_a()), ("B 56KB", system_b())):
        traces = [
            collect_signature(app, p, hierarchy).slowest_trace()
            for p in counts
        ]
        schema = traces[0].schema
        for function in [
            b.location.function for b in traces[0].sorted_blocks()
        ]:
            series = []
            for trace in traces:
                block = next(
                    b
                    for b in trace.sorted_blocks()
                    if b.location.function == function
                )
                series.append(100 * block.aggregate(schema)["hit_rate_L1"])
            table.add_row(function, label, *series)
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's core counts (slower)",
    )
    args = parser.parse_args()

    if args.paper_scale:
        app = SpecFEM3DProxy()
        train, targets = (96, 384, 1536), (6144,)
        whatif_counts = (96, 384, 1536)
    else:
        app = SpecFEM3DProxy(SpecFEMParams(global_elements=(24, 24, 24)))
        train, targets = (6, 24, 96), (384,)
        whatif_counts = (6, 24, 96)

    machine = get_machine("blue_waters_p1")
    print(hit_rate_evolution(app, machine, train, targets).render())
    print()
    print(l1_whatif(app, whatif_counts).render())
    print(
        "\nReading the tables: blocks whose working set shrinks with the "
        "core count climb into L2/L3 (Table II's story); the element "
        "kernel's constant scratch footprint only cares about L1 size "
        "(Table III's story)."
    )


if __name__ == "__main__":
    main()
