#!/usr/bin/env python3
"""Quickstart: the full trace-extrapolation pipeline on a small stencil app.

Walks the paper's methodology end to end, on a workload small enough to
finish in under a minute:

1. measure the target machine's profile (MultiMAPS bandwidth surface);
2. run the app at three small core counts, tracing the most
   computationally demanding MPI task against the *target* hierarchy;
3. fit the four canonical forms to every feature element and synthesize
   the extrapolated trace at the large core count;
4. predict the runtime at the large count with the extrapolated trace —
   and compare against a really-collected trace and the ground-truth
   "measured" runtime.

Run:  python examples/quickstart.py
"""

from repro import (
    collect_signature,
    extrapolate_trace,
    get_app,
    get_machine,
    measure_runtime,
    predict_runtime,
)
from repro.apps.jacobi import JacobiParams, JacobiProxy
from repro.core.errors import abs_rel_error
from repro.machine.systems import get_spec
from repro.util.tables import Table

TRAIN_COUNTS = (8, 16, 32)
TARGET_COUNT = 64


def main() -> None:
    # A small Jacobi relaxation proxy; the real studies use the SPECFEM3D
    # and UH3D proxies (see the other examples).
    app = JacobiProxy(JacobiParams(global_cells=(96, 96, 96)))

    print("== 1. machine profile (MultiMAPS probe of the target) ==")
    machine = get_machine("blue_waters_p1")
    print(machine.describe())

    print("\n== 2. signatures at small core counts ==")
    traces = []
    for count in TRAIN_COUNTS:
        signature = collect_signature(app, count, machine.hierarchy)
        trace = signature.slowest_trace()
        traces.append(trace)
        print(
            f"  {count:>4} cores: traced slowest rank {trace.rank} "
            f"({trace.n_blocks} blocks, {trace.n_instructions} instructions)"
        )

    print("\n== 3. extrapolation to the target core count ==")
    result = extrapolate_trace(traces, TARGET_COUNT)
    print(f"  winning canonical forms: {dict(result.report.form_histogram())}")

    print("\n== 4. prediction vs collected trace vs measured ==")
    job = app.build_job(TARGET_COUNT)
    pred_extrap = predict_runtime(
        app, TARGET_COUNT, result.trace, machine, job=job
    )
    collected = collect_signature(
        app, TARGET_COUNT, machine.hierarchy, job=job
    ).slowest_trace()
    pred_coll = predict_runtime(app, TARGET_COUNT, collected, machine, job=job)
    measured = measure_runtime(
        app, TARGET_COUNT, get_spec("blue_waters_p1"), job=job
    )

    table = Table(
        columns=["Trace type", "Predicted (ms)", "% error vs measured"],
        title=f"jacobi @ {TARGET_COUNT} cores "
        f"(measured: {measured.runtime_s * 1e3:.3f} ms)",
        float_fmt=".3f",
    )
    for label, pred in (("Extrap.", pred_extrap), ("Coll.", pred_coll)):
        err = 100 * abs_rel_error(measured.runtime_s, pred.runtime_s)
        table.add_row(label, pred.runtime_s * 1e3, f"{err:.1f}%")
    print(table.render())
    print(
        "\nThe extrapolated trace was built *without ever running at "
        f"{TARGET_COUNT} cores* — that is the paper's point."
    )


if __name__ == "__main__":
    main()
