#!/usr/bin/env python3
"""How much should you trust an extrapolated trace?

An extension beyond the paper: leave-one-out cross-validation of the
canonical fits.  We hold out the largest training core count, refit every
feature element on the smaller counts, and score the held-out prediction.
Elements that fail the check are exactly the ones an analyst should
expect to be wrong at the target — typically working sets crossing a
cache capacity right at the edge of the training window, and absolute
operation counts under strong scaling (fixable with the extended forms,
see the §VI ablation bench).

Run:  python examples/extrapolation_confidence.py
"""

from repro import collect_signature, get_machine
from repro.apps.uh3d import UH3DParams, UH3DProxy
from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS
from repro.core.crossval import cross_validate_traces
from repro.util.tables import Table

TRAIN_COUNTS = (16, 32, 64, 128)


def main() -> None:
    app = UH3DProxy(
        UH3DParams(global_cells=(64, 64, 64), particles_per_cell=4.0)
    )
    machine = get_machine("blue_waters_p1")
    print("collecting traces at", TRAIN_COUNTS, "cores ...")
    traces = [
        collect_signature(app, p, machine.hierarchy).slowest_trace()
        for p in TRAIN_COUNTS
    ]

    table = Table(
        columns=["Form set", "median held-out err", "trusted (<20%)"],
        title="Leave-last-out confidence of the canonical fits (uh3d-small)",
        float_fmt=".3f",
    )
    reports = {}
    for label, forms in (("paper", PAPER_FORMS), ("extended", EXTENDED_FORMS)):
        report = cross_validate_traces(traces, forms=forms)
        reports[label] = report
        table.add_row(label, report.median_error(), report.trust_fraction(0.2))
    print(table.render())

    print("\nLeast trustworthy elements (paper forms):")
    worst = Table(
        columns=["Block", "Instr", "Feature", "held-out", "predicted", "err"],
        float_fmt=".4g",
    )
    for e in reports["paper"].flagged(0.2)[:8]:
        worst.add_row(
            e.block_id,
            e.instr_id,
            e.feature,
            e.held_out_value,
            e.predicted_value,
            f"{100 * e.held_out_error:.0f}%",
        )
    print(worst.render())
    print(
        "\nThe flagged elements are the strong-scaled counts; re-run with"
        "\nthe extended form set (power/inverse) and they validate — the"
        "\npaper's SVI conjecture, quantified."
    )


if __name__ == "__main__":
    main()
