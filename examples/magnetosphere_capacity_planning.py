#!/usr/bin/env python3
"""Capacity planning for the UH3D proxy: how far is it worth scaling?

The scenario motivating the paper's introduction: an allocation committee
must decide how many cores to grant a magnetosphere simulation on a
target system.  Tracing at every candidate count is exactly the cost the
methodology avoids: we trace at three small counts, extrapolate the
signature to each candidate count, and predict runtime + parallel
efficiency there.

Run:  python examples/magnetosphere_capacity_planning.py
"""

from repro import (
    collect_signature,
    extrapolate_trace,
    get_machine,
    predict_runtime,
)
from repro.apps.uh3d import UH3DParams, UH3DProxy
from repro.util.tables import Table

TRAIN_COUNTS = (32, 64, 128)
CANDIDATE_COUNTS = (256, 512, 1024, 2048)


def main() -> None:
    # a reduced-mesh UH3D so the example runs in a couple of minutes;
    # drop the params argument for the paper-scale configuration
    app = UH3DProxy(
        UH3DParams(global_cells=(128, 128, 128), particles_per_cell=4.0)
    )
    machine = get_machine("blue_waters_p1")

    print("tracing the slowest task at", TRAIN_COUNTS, "cores ...")
    traces = [
        collect_signature(app, p, machine.hierarchy).slowest_trace()
        for p in TRAIN_COUNTS
    ]

    # baseline runtime prediction at the largest traced count
    base_count = TRAIN_COUNTS[-1]
    base_pred = predict_runtime(app, base_count, traces[-1], machine)
    base_runtime = base_pred.runtime_s

    table = Table(
        columns=[
            "Cores",
            "Predicted runtime (ms)",
            "Speedup vs 128",
            "Parallel efficiency",
            "Comm fraction",
        ],
        title="UH3D capacity planning on BlueWatersP1 (extrapolated traces)",
        float_fmt=".3f",
    )
    table.add_row(
        base_count, base_runtime * 1e3, 1.0, 1.0, base_pred.replay.comm_fraction()
    )
    for count in CANDIDATE_COUNTS:
        extrap = extrapolate_trace(traces, count)
        pred = predict_runtime(app, count, extrap.trace, machine)
        speedup = base_runtime / pred.runtime_s
        efficiency = speedup / (count / base_count)
        table.add_row(
            count,
            pred.runtime_s * 1e3,
            speedup,
            efficiency,
            pred.replay.comm_fraction(),
        )
    print(table.render())
    print(
        "\nEfficiency decays as communication (halo exchanges, collectives)"
        "\nand per-rank overheads grow relative to the shrinking local work;"
        "\nthe committee can pick the knee of this curve without a single"
        "\nrun beyond 128 cores."
    )


if __name__ == "__main__":
    main()
