#!/usr/bin/env python3
"""Cross-architectural prediction: compare target systems without them.

The paper (§III-A) emphasizes that the application signature is
collected on a *base* system while simulating the *target* system's
hierarchy — "a model for the application running on the target system
can be generated without ever having ported the application to the
system, or without the existence of a target system."

This script evaluates the Jacobi proxy on three candidate target systems
by collecting one signature per target hierarchy (all "on the base
system"), convolving each with the matching machine profile, and
replaying — a procurement-style bake-off with zero access to the
candidate machines.

Run:  python examples/cross_architecture_comparison.py
"""

from repro import collect_signature, get_machine, predict_runtime
from repro.apps.jacobi import JacobiParams, JacobiProxy
from repro.util.tables import Table

CANDIDATES = ("opteron_2level", "cray_xt5", "blue_waters_p1")
CORE_COUNT = 64


def main() -> None:
    app = JacobiProxy(JacobiParams(global_cells=(96, 96, 96)))
    job = app.build_job(CORE_COUNT)

    table = Table(
        columns=[
            "Target system",
            "Levels",
            "Predicted runtime (ms)",
            "Compute (ms)",
            "Comm fraction",
        ],
        title=f"jacobi @ {CORE_COUNT} cores: cross-architectural bake-off",
        float_fmt=".3f",
    )
    results = {}
    for name in CANDIDATES:
        machine = get_machine(name)
        # the signature is target-specific: the cache simulator mimics
        # *this* candidate's hierarchy during collection
        trace = collect_signature(
            app, CORE_COUNT, machine.hierarchy, job=job
        ).slowest_trace()
        pred = predict_runtime(app, CORE_COUNT, trace, machine, job=job)
        results[name] = pred
        table.add_row(
            machine.name,
            machine.hierarchy.n_levels,
            pred.runtime_s * 1e3,
            pred.replay.max_compute_s * 1e3,
            pred.replay.comm_fraction(),
        )
    print(table.render())

    ranked = sorted(results.items(), key=lambda kv: kv[1].runtime_s)
    print(f"\nBest candidate for this workload: {ranked[0][0]}")
    print(
        "None of these systems had to exist: the signatures were "
        "collected once per hierarchy on the (simulated) base system."
    )


if __name__ == "__main__":
    main()
