#!/usr/bin/env python3
"""Energy and DVFS planning at scale — from small-count traces only.

The paper's feature set was chosen to matter "for both performance and
energy"; this example shows why.  From the UH3D proxy's traces at three
small core counts we extrapolate the 512-core trace, then:

1. predict whole-run energy at 512 cores (power from per-block activity,
   idle energy from the replayed timeline's waiting);
2. plan a memory/computation-aware DVFS schedule (ref [23]) for the
   512-core run: memory-bound blocks drop to lower frequencies with
   bounded slowdown.

Neither step ran anything at 512 cores.

Run:  python examples/energy_at_scale.py
"""

from repro import collect_signature, extrapolate_trace, get_machine
from repro.apps.uh3d import UH3DParams, UH3DProxy
from repro.energy import EnergyModel, PowerParameters, plan_dvfs
from repro.pipeline.predict import predict_runtime
from repro.psins.convolution import ComputationModel
from repro.util.tables import Table

TRAIN_COUNTS = (64, 128, 256)
TARGET = 512


def main() -> None:
    app = UH3DProxy(
        UH3DParams(global_cells=(128, 128, 128), particles_per_cell=4.0)
    )
    machine = get_machine("blue_waters_p1")
    print("tracing at", TRAIN_COUNTS, "cores; extrapolating to", TARGET)
    traces = [
        collect_signature(app, p, machine.hierarchy).slowest_trace()
        for p in TRAIN_COUNTS
    ]
    extrap = extrapolate_trace(traces, TARGET)
    job = app.build_job(TARGET)
    prediction = predict_runtime(app, TARGET, extrap.trace, machine, job=job)
    energy = EnergyModel(prediction.model, PowerParameters())

    result = energy.job_energy(job, prediction.replay)
    print(
        f"\npredicted @ {TARGET} cores: runtime {prediction.runtime_s * 1e3:.2f} ms, "
        f"energy {result.total_energy_j:.1f} J "
        f"({result.compute_energy_j:.1f} J compute + "
        f"{result.idle_energy_j:.1f} J idle)"
    )

    table = Table(
        columns=["Block", "Power (W)", "core act", "mem act", "DVFS freq"],
        title="Per-block power and the memory-aware DVFS schedule",
        float_fmt=".2f",
    )
    plan = plan_dvfs(energy, max_slowdown=0.05)
    trace = extrap.trace
    for bid in sorted(trace.blocks):
        b = energy.block(bid)
        table.add_row(
            trace.blocks[bid].location.function,
            b.power_w,
            b.core_activity,
            b.mem_activity,
            plan.choices[bid].frequency,
        )
    print(table.render())
    print(
        f"\nDVFS plan: {100 * plan.energy_savings():.1f}% compute-energy "
        f"saved at {100 * plan.slowdown():.2f}% slowdown — decided without "
        f"running at {TARGET} cores."
    )


if __name__ == "__main__":
    main()
